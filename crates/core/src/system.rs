//! The complete two-core decoupled look-ahead system (paper Fig 2 / Fig 8):
//! a look-ahead core running the skeleton, a main core fed from the BOQ,
//! the footnote queue, and the R3 optimizations wired in.

use std::cell::RefCell;
use std::collections::HashSet;
use std::rc::Rc;

use r3dla_bpred::Tage;
use r3dla_cpu::{
    ActivityCounters, BaseMem, CommitRecord, CommitSink, Core, CoreConfig, PredictorDirection,
};
use r3dla_isa::{ArchCheckpoint, ArchState, FxHashMap, Program, VecMem};
use r3dla_mem::{CacheStats, CoreMem, DramStats, MemConfig, SharedLlc};
use r3dla_workloads::BuiltWorkload;

use crate::dataflow::Dataflow;
use crate::kernel::{event_kernel_default, Kernel, KernelActor};
use crate::overlay::OverlayMem;
use crate::profile::{profile, ProfileData};
use crate::queues::{Boq, BoqDirection, Footnote, FootnoteQueue};
use crate::recycle::{ActiveSkeleton, RecycleController, RecycleMode};
use crate::skeleton::{generate_skeletons, SkeletonOptions, SkeletonSet};
use crate::t1::T1;
use crate::value_reuse::{Sif, VrSource};

/// Configuration of a DLA/R3-DLA system.
#[derive(Debug, Clone)]
pub struct DlaConfig {
    /// Main-thread core.
    pub mt_core: CoreConfig,
    /// Look-ahead core.
    pub lt_core: CoreConfig,
    /// Memory configuration (the LT variant derives discard-dirty
    /// private caches from it automatically).
    pub mem: MemConfig,
    /// BOQ capacity (paper: 512) — bounds look-ahead depth.
    pub boq_capacity: usize,
    /// FQ capacity (paper: 128).
    pub fq_capacity: usize,
    /// Reboot register-copy cost in cycles (paper: 64).
    pub reboot_cost: u64,
    /// Enable the T1 strided-prefetch offload FSM (*reduce*).
    pub t1: bool,
    /// T1 table entries (paper: 16).
    pub t1_entries: usize,
    /// Enable value reuse (*reuse*, §III-D1).
    pub value_reuse: bool,
    /// Pending value-reuse entries retained on the MT side (paper VPT: 32).
    pub vr_capacity: usize,
    /// Recycle mode (*recycle*, §III-E).
    pub recycle: RecycleMode,
    /// L2 prefetcher attached to the MT core (`None` disables).
    pub mt_l2_prefetcher: Option<&'static str>,
    /// L2 prefetcher attached to the LT core.
    pub lt_l2_prefetcher: Option<&'static str>,
    /// L1 prefetcher attached to the MT core (used for the Table III
    /// "BL + stride" comparison).
    pub mt_l1_prefetcher: Option<&'static str>,
    /// Instructions of the training run used for profiling.
    pub profile_insts: u64,
    /// Whether LT sends footnote-queue hints (L1 prefetch, TLB, indirect
    /// targets). SlipStream-style systems pass only branch outcomes and
    /// warm the shared cache, so they disable this.
    pub fq_hints: bool,
}

impl DlaConfig {
    /// The baseline DLA configuration (paper §III-A): no T1, no value
    /// reuse, no recycling, 8-entry fetch buffer.
    pub fn dla() -> Self {
        Self {
            mt_core: CoreConfig::paper(),
            lt_core: {
                let mut c = CoreConfig::paper();
                c.fetch_masks = true;
                c
            },
            mem: MemConfig::paper(),
            boq_capacity: 512,
            fq_capacity: 128,
            reboot_cost: 64,
            t1: false,
            t1_entries: 16,
            value_reuse: false,
            vr_capacity: 32,
            recycle: RecycleMode::Off,
            mt_l2_prefetcher: Some("bop"),
            lt_l2_prefetcher: Some("bop"),
            mt_l1_prefetcher: None,
            profile_insts: 2_000_000,
            fq_hints: true,
        }
    }

    /// The full R3-DLA configuration: T1 + value reuse + 32-entry fetch
    /// buffer + dynamic recycling (paper §III-F).
    pub fn r3() -> Self {
        let mut cfg = Self::dla();
        cfg.t1 = true;
        cfg.value_reuse = true;
        cfg.recycle = RecycleMode::Dynamic;
        cfg.mt_core.fetch_buffer = 32;
        cfg
    }

    /// Removes the standalone hardware prefetchers (the paper's "noPF"
    /// variants).
    pub fn without_prefetcher(mut self) -> Self {
        self.mt_l2_prefetcher = None;
        self.lt_l2_prefetcher = None;
        self.mt_l1_prefetcher = None;
        self
    }
}

/// Errors from system construction.
#[derive(Debug)]
pub enum BuildError {
    /// The program was empty.
    EmptyProgram,
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::EmptyProgram => write!(f, "program has no instructions"),
        }
    }
}

impl std::error::Error for BuildError {}

struct LtSink {
    boq: Rc<RefCell<Boq>>,
    fq: Rc<RefCell<FootnoteQueue>>,
    sif: Rc<RefCell<Sif>>,
    value_reuse: bool,
    fq_hints: bool,
    /// Tag of the last BOQ entry pushed, or `None` before the first
    /// conditional branch commits (and again right after a reboot).
    last_tag: Option<u64>,
    /// Hints committed before the first branch: held here and re-tagged
    /// with that branch's tag so `release_up_to` delivers them
    /// just-in-time instead of immediately.
    pending: Vec<Footnote>,
    pending_cap: usize,
}

impl LtSink {
    fn push_note(&mut self, note: Footnote) {
        match self.last_tag {
            Some(tag) => self.fq.borrow_mut().push(tag, note),
            None => {
                if self.pending.len() < self.pending_cap {
                    self.pending.push(note);
                }
            }
        }
    }

    /// Forgets the aligning-branch state after a reboot: the next hints
    /// must wait for the first post-reboot branch again.
    fn reset(&mut self) {
        self.last_tag = None;
        self.pending.clear();
    }
}

impl CommitSink for LtSink {
    fn on_commit(&mut self, rec: &CommitRecord) {
        if rec.inst.is_cond_branch() {
            let tag = self.boq.borrow_mut().push(rec.taken.unwrap_or(false));
            // Flush hints that preceded any branch: this branch is their
            // aligning BOQ entry.
            if !self.pending.is_empty() {
                let mut fq = self.fq.borrow_mut();
                for note in self.pending.drain(..) {
                    let note = match note {
                        Footnote::Value {
                            offset, pc, value, ..
                        } => Footnote::Value {
                            tag,
                            offset,
                            pc,
                            value,
                        },
                        other => other,
                    };
                    fq.push(tag, note);
                }
            }
            self.last_tag = Some(tag);
            return;
        }
        if !self.fq_hints {
            return;
        }
        if rec.inst.is_branch() && !rec.inst.has_static_target() {
            // Indirect branch: send the target hint.
            self.push_note(Footnote::BranchTarget {
                pc: rec.pc,
                target: rec.next_pc,
            });
        }
        if rec.inst.is_load() {
            if let Some(addr) = rec.mem_addr {
                if rec.l1_miss {
                    self.push_note(Footnote::L1Prefetch(addr));
                }
                if rec.tlb_miss {
                    self.push_note(Footnote::TlbHint(addr));
                }
            }
        }
        if self.value_reuse && !rec.inst.is_branch() {
            if let Some(value) = rec.value {
                if self.sif.borrow().should_reuse(rec.pc) {
                    let tag = self.last_tag.unwrap_or(0);
                    self.push_note(Footnote::Value {
                        tag,
                        offset: 0,
                        pc: rec.pc,
                        value,
                    });
                }
            }
        }
    }
}

/// An optional, late-bound commit observer shared across sinks.
type SharedObserver = Rc<RefCell<Option<Rc<RefCell<dyn CommitSink>>>>>;

struct MtSink {
    boq: Rc<RefCell<Boq>>,
    sif: Rc<RefCell<Sif>>,
    t1: Option<Rc<RefCell<T1>>>,
    t1_out: Rc<RefCell<Vec<u64>>>,
    sbit_pcs: HashSet<u64>,
    recycle: Rc<RefCell<RecycleController>>,
    active: Rc<RefCell<ActiveSkeleton>>,
    value_reuse: bool,
    observer: SharedObserver,
}

impl CommitSink for MtSink {
    fn on_commit(&mut self, rec: &CommitRecord) {
        if let Some(obs) = self.observer.borrow().clone() {
            obs.borrow_mut().on_commit(rec);
        }
        self.recycle
            .borrow_mut()
            .on_commit(&mut self.active.borrow_mut());
        if rec.inst.is_cond_branch() {
            self.boq.borrow_mut().commit_front();
            if rec.taken == Some(true) && rec.next_pc < rec.pc {
                // A committed loop branch.
                if self.value_reuse {
                    self.sif.borrow_mut().on_loop_branch(rec.next_pc);
                }
                if let Some(t1) = &self.t1 {
                    t1.borrow_mut().on_loop_branch(rec.next_pc);
                }
                self.recycle.borrow_mut().on_loop_branch(
                    rec.next_pc,
                    rec.cycle,
                    &mut self.active.borrow_mut(),
                );
            }
        }
        if self.value_reuse {
            self.sif
                .borrow_mut()
                .observe_latency(rec.pc, rec.dispatch_to_exec);
        }
        if let Some(t1) = &self.t1 {
            if self.sbit_pcs.contains(&rec.pc) {
                if let Some(addr) = rec.mem_addr {
                    t1.borrow_mut()
                        .observe(rec.pc, addr, rec.cycle, &mut self.t1_out.borrow_mut());
                }
            }
        }
    }
}

/// A consistent snapshot of system-wide counters, for windowed
/// measurement (warm up, snapshot, measure, diff).
#[derive(Debug, Clone)]
pub struct SysSnapshot {
    /// Global cycle at the snapshot.
    pub cycles: u64,
    /// MT committed instructions.
    pub mt_committed: u64,
    /// LT committed instructions.
    pub lt_committed: u64,
    /// MT activity counters.
    pub mt_counters: ActivityCounters,
    /// LT activity counters.
    pub lt_counters: ActivityCounters,
    /// DRAM statistics.
    pub dram: DramStats,
    /// MT L1D statistics.
    pub mt_l1d: CacheStats,
    /// Reboot count.
    pub reboots: u64,
}

/// Windowed measurement derived from two snapshots.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WindowReport {
    /// Cycles elapsed.
    pub cycles: u64,
    /// MT instructions committed.
    pub mt_committed: u64,
    /// LT instructions committed.
    pub lt_committed: u64,
    /// Main-thread IPC — the system's performance metric.
    pub mt_ipc: f64,
    /// DRAM line transfers (the paper's memory-traffic metric).
    pub dram_traffic: u64,
    /// MT L1D demand misses.
    pub mt_l1d_misses: u64,
    /// MT L1D demand accesses.
    pub mt_l1d_accesses: u64,
    /// Reboots within the window.
    pub reboots: u64,
}

/// Cycles a reboot waits for MT's pipeline to drain before forcing the
/// restart anyway.
const REBOOT_DRAIN_TIMEOUT: u64 = 10_000;

/// The complete DLA / R3-DLA system: two cores plus queues.
pub struct DlaSystem {
    program: Rc<Program>,
    mt: Core,
    lt: Core,
    boq: Rc<RefCell<Boq>>,
    fq: Rc<RefCell<FootnoteQueue>>,
    ind_targets: Rc<RefCell<FxHashMap<u64, u64>>>,
    vr: Option<Rc<RefCell<VrSource>>>,
    sif: Rc<RefCell<Sif>>,
    t1_out: Rc<RefCell<Vec<u64>>>,
    overlay: Rc<RefCell<OverlayMem>>,
    active: Rc<RefCell<ActiveSkeleton>>,
    recycle: Rc<RefCell<RecycleController>>,
    mt_observer: SharedObserver,
    lt_sink: Rc<RefCell<LtSink>>,
    note_buf: Vec<Footnote>,
    cycle: u64,
    reboot_cost: u64,
    pending_reboot: bool,
    pending_since: u64,
    fast_forward: bool,
    event_kernel: bool,
    /// Total reboots performed.
    pub reboots: u64,
    /// The profile used for skeleton generation.
    pub profile: ProfileData,
}

impl std::fmt::Debug for DlaSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DlaSystem")
            .field("cycle", &self.cycle)
            .field("reboots", &self.reboots)
            .finish_non_exhaustive()
    }
}

impl DlaSystem {
    /// Builds the system for a workload: profiles a training window,
    /// generates skeletons, and wires both cores.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::EmptyProgram`] for empty programs.
    pub fn build(
        built: &BuiltWorkload,
        cfg: DlaConfig,
        opt: SkeletonOptions,
    ) -> Result<Self, BuildError> {
        if built.program.is_empty() {
            return Err(BuildError::EmptyProgram);
        }
        let program = Rc::new(built.program.clone());
        let df = Dataflow::analyze(&program);
        let prof = profile(&program, cfg.profile_insts);
        let skeletons = generate_skeletons(&program, &df, &prof, &opt, cfg.t1);
        Ok(Self::assemble(program, cfg, skeletons, prof))
    }

    /// Like [`build`](Self::build), but assembling over an externally
    /// owned shared LLC/DRAM — the multi-tenant path: build several
    /// systems over the same handle and host them in one
    /// [`Cluster`](crate::Cluster).
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::EmptyProgram`] for empty programs.
    pub fn build_shared(
        built: &BuiltWorkload,
        cfg: DlaConfig,
        opt: SkeletonOptions,
        shared: Rc<RefCell<SharedLlc>>,
    ) -> Result<Self, BuildError> {
        if built.program.is_empty() {
            return Err(BuildError::EmptyProgram);
        }
        let program = Rc::new(built.program.clone());
        let df = Dataflow::analyze(&program);
        let prof = profile(&program, cfg.profile_insts);
        let skeletons = generate_skeletons(&program, &df, &prof, &opt, cfg.t1);
        Ok(Self::assemble_shared(program, cfg, skeletons, prof, shared))
    }

    /// Like [`build`](Self::build), but resumes from an architectural
    /// checkpoint instead of the program entry.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::EmptyProgram`] for empty programs.
    pub fn build_from_checkpoint(
        built: &BuiltWorkload,
        cfg: DlaConfig,
        opt: SkeletonOptions,
        ckpt: &ArchCheckpoint,
    ) -> Result<Self, BuildError> {
        if built.program.is_empty() {
            return Err(BuildError::EmptyProgram);
        }
        let program = Rc::new(built.program.clone());
        let df = Dataflow::analyze(&program);
        let prof = profile(&program, cfg.profile_insts);
        let skeletons = generate_skeletons(&program, &df, &prof, &opt, cfg.t1);
        Ok(Self::restore_from_checkpoint(
            program, cfg, skeletons, prof, ckpt,
        ))
    }

    /// Builds the system with pre-generated skeletons (used by the static
    /// recycle tuner and ablation benches).
    pub fn assemble(
        program: Rc<Program>,
        cfg: DlaConfig,
        skeletons: SkeletonSet,
        prof: ProfileData,
    ) -> Self {
        Self::assemble_at(program, cfg, skeletons, prof, None, None)
    }

    /// Like [`assemble`](Self::assemble), but over an externally owned
    /// shared LLC/DRAM model instead of a private one — the multi-tenant
    /// constructor: every [`Cluster`](crate::Cluster) tenant built over
    /// the same handle contends for the same L3 capacity, MSHRs and DRAM
    /// channel. `cfg.mem`'s L3/DRAM parameters are ignored in favor of
    /// the handle's.
    pub fn assemble_shared(
        program: Rc<Program>,
        cfg: DlaConfig,
        skeletons: SkeletonSet,
        prof: ProfileData,
        shared: Rc<RefCell<SharedLlc>>,
    ) -> Self {
        Self::assemble_at(program, cfg, skeletons, prof, None, Some(shared))
    }

    /// Assembles the system resumed from an architectural checkpoint:
    /// memory is the pristine image plus the checkpoint's dirty-page
    /// delta, and both cores' threads start at the checkpoint PC with
    /// the checkpoint register file. Microarchitectural state (caches,
    /// predictors, queues) starts cold — sampled simulation warms it
    /// explicitly per interval.
    pub fn restore_from_checkpoint(
        program: Rc<Program>,
        cfg: DlaConfig,
        skeletons: SkeletonSet,
        prof: ProfileData,
        ckpt: &ArchCheckpoint,
    ) -> Self {
        Self::assemble_at(program, cfg, skeletons, prof, Some(ckpt), None)
    }

    fn assemble_at(
        program: Rc<Program>,
        cfg: DlaConfig,
        skeletons: SkeletonSet,
        prof: ProfileData,
        restore: Option<&ArchCheckpoint>,
        external_llc: Option<Rc<RefCell<SharedLlc>>>,
    ) -> Self {
        // Shared architectural memory.
        let arch_mem = Rc::new(RefCell::new(VecMem::new()));
        arch_mem.borrow_mut().load_image(program.image());
        if let Some(ckpt) = restore {
            ckpt.apply_to(&mut arch_mem.borrow_mut());
        }
        // Shared L3 + DRAM: private by default, or an external handle
        // when several tenant systems contend for one memory side.
        let shared =
            external_llc.unwrap_or_else(|| Rc::new(RefCell::new(SharedLlc::new(&cfg.mem))));
        // Queues and hint state.
        let boq = Rc::new(RefCell::new(Boq::new(cfg.boq_capacity)));
        let fq = Rc::new(RefCell::new(FootnoteQueue::new(cfg.fq_capacity)));
        let ind_targets = Rc::new(RefCell::new(FxHashMap::default()));
        let sif = Rc::new(RefCell::new(Sif::new()));
        let t1 = cfg
            .t1
            .then(|| Rc::new(RefCell::new(T1::new(cfg.t1_entries, 200))));
        let t1_out = Rc::new(RefCell::new(Vec::new()));
        let active = Rc::new(RefCell::new(ActiveSkeleton::new(skeletons, &program)));
        let recycle = Rc::new(RefCell::new(RecycleController::new(cfg.recycle.clone())));
        // S-bit PCs come from the default skeleton version.
        let sbit_pcs: HashSet<u64> = active.borrow().set().versions[0]
            .sbits
            .iter()
            .enumerate()
            .filter(|(_, &s)| s)
            .map(|(i, _)| program.index_to_pc(i))
            .collect();
        // ---- Main core ----------------------------------------------------
        let mut mt_mem = CoreMem::new(&cfg.mem, Rc::clone(&shared));
        if let Some(name) = cfg.mt_l2_prefetcher {
            if let Some(pf) = r3dla_prefetch::by_name(name) {
                mt_mem.set_l2_prefetcher(pf);
            }
        }
        if let Some(name) = cfg.mt_l1_prefetcher {
            if let Some(pf) = r3dla_prefetch::by_name(name) {
                mt_mem.set_l1_prefetcher(pf);
            }
        }
        let mut mt = Core::new(cfg.mt_core.clone(), Rc::clone(&program), mt_mem);
        let (start_pc, start_regs) = match restore {
            Some(ckpt) => (ckpt.pc(), ckpt.regs()),
            None => (program.entry(), ArchState::new(program.entry()).regs()),
        };
        let mt_dir = Box::new(BoqDirection::new(Rc::clone(&boq), Rc::clone(&ind_targets)));
        let mt_tid = mt.add_thread(
            start_pc,
            start_regs,
            mt_dir,
            Rc::new(RefCell::new(BaseMem(Rc::clone(&arch_mem)))),
        );
        debug_assert_eq!(mt_tid, 0);
        let vr = cfg.value_reuse.then(|| {
            let vr = Rc::new(RefCell::new(VrSource::new(cfg.vr_capacity)));
            mt.set_value_source(0, vr.clone());
            vr
        });
        let mt_observer: SharedObserver = Rc::new(RefCell::new(None));
        let mt_sink = Rc::new(RefCell::new(MtSink {
            boq: Rc::clone(&boq),
            sif: Rc::clone(&sif),
            t1: t1.clone(),
            t1_out: Rc::clone(&t1_out),
            sbit_pcs,
            recycle: Rc::clone(&recycle),
            active: Rc::clone(&active),
            value_reuse: cfg.value_reuse,
            observer: Rc::clone(&mt_observer),
        }));
        mt.set_commit_sink(0, mt_sink);
        // ---- Look-ahead core ----------------------------------------------
        let mut lt_mem_cfg = cfg.mem.clone();
        lt_mem_cfg.l1d.discard_dirty = true;
        lt_mem_cfg.l2.discard_dirty = true;
        let mut lt_mem = CoreMem::new(&lt_mem_cfg, Rc::clone(&shared));
        if let Some(name) = cfg.lt_l2_prefetcher {
            if let Some(pf) = r3dla_prefetch::by_name(name) {
                lt_mem.set_l2_prefetcher(pf);
            }
        }
        let mut lt = Core::new(cfg.lt_core.clone(), Rc::clone(&program), lt_mem);
        let overlay = Rc::new(RefCell::new(OverlayMem::new(Rc::clone(&arch_mem))));
        let lt_dir = Box::new(PredictorDirection::new(Box::new(Tage::paper())));
        let lt_tid = lt.add_thread(start_pc, start_regs, lt_dir, overlay.clone());
        debug_assert_eq!(lt_tid, 0);
        lt.set_fetch_filter(0, active.clone());
        lt.set_branch_override(0, active.clone());
        let lt_sink = Rc::new(RefCell::new(LtSink {
            boq: Rc::clone(&boq),
            fq: Rc::clone(&fq),
            sif: Rc::clone(&sif),
            value_reuse: cfg.value_reuse,
            fq_hints: cfg.fq_hints,
            last_tag: None,
            pending: Vec::new(),
            pending_cap: cfg.fq_capacity,
        }));
        lt.set_commit_sink(0, Rc::clone(&lt_sink) as _);
        Self {
            program,
            mt,
            lt,
            boq,
            fq,
            ind_targets,
            vr,
            sif,
            t1_out,
            overlay,
            active,
            recycle,
            mt_observer,
            lt_sink,
            note_buf: Vec::new(),
            cycle: 0,
            reboot_cost: cfg.reboot_cost,
            pending_reboot: false,
            pending_since: 0,
            fast_forward: true,
            event_kernel: event_kernel_default(),
            reboots: 0,
            profile: prof,
        }
    }

    /// The program under simulation.
    pub fn program(&self) -> &Rc<Program> {
        &self.program
    }

    /// The main core (counters, stats).
    pub fn mt(&self) -> &Core {
        &self.mt
    }

    /// The look-ahead core (counters, stats).
    pub fn lt(&self) -> &Core {
        &self.lt
    }

    /// Current global cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// The active-skeleton holder (recycle statistics, Fig 15 usage).
    pub fn active_skeleton(&self) -> Rc<RefCell<ActiveSkeleton>> {
        Rc::clone(&self.active)
    }

    /// The recycle controller statistics.
    pub fn recycle_controller(&self) -> Rc<RefCell<RecycleController>> {
        Rc::clone(&self.recycle)
    }

    /// Current look-ahead depth in BOQ entries.
    pub fn lookahead_depth(&self) -> usize {
        self.boq.borrow().depth()
    }

    /// Whether the main thread has halted.
    pub fn mt_halted(&self) -> bool {
        self.mt.thread_halted(0)
    }

    /// Attaches an extra observer to the main thread's commit stream
    /// (used by experiment harnesses for per-PC attribution).
    pub fn set_mt_observer(&mut self, sink: Rc<RefCell<dyn CommitSink>>) {
        *self.mt_observer.borrow_mut() = Some(sink);
    }

    /// Injects a BOQ misfeed, as if MT had just detected a wrong fed
    /// direction — a fault-injection hook for reboot-path tests and
    /// reboot-cost experiments.
    pub fn inject_misfeed(&mut self) {
        self.boq.borrow_mut().misfeed = true;
    }

    /// Functional warm touch of both cores' data paths: tag-array install
    /// plus TLB prefill, no timing or statistics effects. The sampled-
    /// simulation harness replays the emulator's load/store stream
    /// through this before a detailed window.
    pub fn warm_data(&mut self, addr: u64) {
        self.mt.mem_mut().warm_data(addr);
        self.lt.mem_mut().warm_data(addr);
    }

    /// Functional warm touch of both cores' instruction paths.
    pub fn warm_inst(&mut self, pc: u64) {
        self.mt.mem_mut().warm_inst(pc);
        self.lt.mem_mut().warm_inst(pc);
    }

    /// Functionally trains the look-ahead core's branch predictor with
    /// one architectural outcome (the main thread's BOQ-fed direction
    /// source ignores warmup by design).
    pub fn warm_branch(&mut self, pc: u64, taken: bool) {
        self.mt.warm_branch(0, pc, taken);
        self.lt.warm_branch(0, pc, taken);
    }

    /// Advances the whole system by one cycle.
    pub fn step(&mut self) {
        // Main core first: it consumes BOQ entries and may detect misfeed.
        self.mt.step();
        // Release footnotes up to the last served BOQ tag and apply them.
        let served = self.boq.borrow().last_served_tag();
        self.note_buf.clear();
        self.fq
            .borrow_mut()
            .release_up_to(served, &mut self.note_buf);
        for i in 0..self.note_buf.len() {
            match self.note_buf[i] {
                Footnote::L1Prefetch(addr) => {
                    self.mt.mem_mut().prefetch_into_l1(addr, self.cycle);
                }
                Footnote::TlbHint(addr) => self.mt.mem_mut().tlb_fill(addr),
                Footnote::BranchTarget { pc, target } => {
                    self.ind_targets.borrow_mut().insert(pc, target);
                }
                Footnote::Value { tag, pc, value, .. } => {
                    if let Some(vr) = &self.vr {
                        vr.borrow_mut().insert(tag, pc, value);
                    }
                }
            }
        }
        // T1 prefetches raised at MT commit.
        {
            let mut out = self.t1_out.borrow_mut();
            for i in 0..out.len() {
                let addr = out[i];
                self.mt.mem_mut().prefetch_into_l1(addr, self.cycle);
            }
            out.clear();
        }
        // Value-misprediction feedback into the SIF.
        if let Some(vr) = &self.vr {
            let mut vr = vr.borrow_mut();
            for pc in vr.mispredicted_pcs.drain(..) {
                self.sif.borrow_mut().on_mispredict(pc);
            }
        }
        // Misfeed → freeze LT, drain MT, then reboot.
        if self.boq.borrow().misfeed && !self.pending_reboot {
            self.pending_reboot = true;
            self.pending_since = self.cycle;
            self.boq.borrow_mut().clear();
            self.fq.borrow_mut().clear();
            if let Some(vr) = &self.vr {
                vr.borrow_mut().clear();
            }
            self.ind_targets.borrow_mut().clear();
        }
        if self.pending_reboot {
            let drained = self.mt.in_flight(0) == 0;
            let timeout = self.cycle - self.pending_since > REBOOT_DRAIN_TIMEOUT;
            if drained || timeout {
                self.do_reboot();
            }
        } else {
            // Look-ahead core advances unless the BOQ says it is far
            // enough ahead (paper §III-A ®: depth control) — the same
            // eligibility predicate the skip path uses.
            if self.lt_runnable() {
                self.lt.step();
            }
        }
        self.cycle += 1;
    }

    fn do_reboot(&mut self) {
        let pc = self.mt.arch_pc(0);
        let regs = self.mt.arch_regs(0);
        self.lt.reboot_thread(0, pc, regs, self.reboot_cost);
        self.overlay.borrow_mut().clear();
        self.boq.borrow_mut().clear();
        self.fq.borrow_mut().clear();
        if let Some(vr) = &self.vr {
            vr.borrow_mut().clear();
        }
        // Indirect-branch targets learned before the misfeed would steer
        // MT fetch down stale paths after the restart.
        self.ind_targets.borrow_mut().clear();
        self.lt_sink.borrow_mut().reset();
        self.pending_reboot = false;
        self.reboots += 1;
        // Storm guard: repeated reboots under a recycled skeleton demote
        // it back to the default version.
        self.recycle
            .borrow_mut()
            .on_reboot(&mut self.active.borrow_mut());
    }

    /// Enables or disables event-driven cycle skipping in
    /// [`run_until_mt`](Self::run_until_mt) (on by default).
    ///
    /// Skipping is behavior-preserving: committed-instruction counts, all
    /// activity counters and every report are byte-identical either way —
    /// only host wall-clock changes. The switch exists for equivalence
    /// tests and the runner's `--no-skip` flag.
    pub fn set_fast_forward(&mut self, on: bool) {
        self.fast_forward = on;
    }

    /// Selects the event-kernel run loop (default per
    /// [`event_kernel_default`](crate::event_kernel_default), i.e. on
    /// unless `R3DLA_EVENT_KERNEL=0`). Both loops are byte-identical; the
    /// legacy lockstep loop survives one release as the `cmp` reference.
    pub fn set_event_kernel(&mut self, on: bool) {
        self.event_kernel = on;
    }

    /// Whether LT participates in the current cycle: not frozen by a
    /// pending reboot drain or a full BOQ, and not halted. The single
    /// eligibility predicate shared by [`step`](Self::step),
    /// [`skip_window`](Self::skip_window) and [`do_skip`](Self::do_skip),
    /// so stepping and skipping can never disagree about LT.
    ///
    /// Eligibility is stable across a skip window by construction: it can
    /// only change through an MT action (consuming or committing a BOQ
    /// entry, detecting a misfeed, finishing a reboot drain) or an LT
    /// action (halting, filling the BOQ), and a window exists only while
    /// both cores are provably quiescent — so no mid-window thaw is
    /// reachable. [`do_skip`](Self::do_skip) asserts this invariant.
    fn lt_runnable(&self) -> bool {
        !self.pending_reboot && !self.boq.borrow().full() && !self.lt.halted()
    }

    /// Number of quiescent cycles (≤ `limit`) the whole system can
    /// fast-forward from the current cycle — 0 when any component may act
    /// now — paired with the LT-eligibility flag the window was computed
    /// under (to be handed to [`do_skip`](Self::do_skip) unchanged).
    ///
    /// The system is skippable only when MT is quiescent, no footnote is
    /// pending release, no un-serviced misfeed is latched, and — unless
    /// LT is ineligible ([`lt_runnable`](Self::lt_runnable)) — LT is
    /// quiescent too. The window is the minimum of both cores' wake
    /// bounds (translated into the global clock: LT's own clock lags
    /// whenever the BOQ freezes it) and, during a reboot drain, the
    /// drain-timeout cycle; bounding by every wake-eligibility event this
    /// way means a window can never straddle a cycle on which LT's
    /// eligibility flips.
    fn skip_window(&self, limit: u64) -> (u64, bool) {
        let lt_active = self.lt_runnable();
        if self.boq.borrow().misfeed && !self.pending_reboot {
            return (0, lt_active); // the next step latches the reboot
        }
        // Footnotes released by LT commits are applied at the top of the
        // *next* step; a pending release means the next cycle acts.
        if self
            .fq
            .borrow()
            .has_releasable(self.boq.borrow().last_served_tag())
        {
            return (0, lt_active);
        }
        let Some(mt_wake) = self.mt.next_event_at() else {
            return (0, lt_active);
        };
        let mut wake = mt_wake;
        if self.pending_reboot {
            if self.mt.in_flight(0) == 0 {
                return (0, lt_active); // drained: the next step reboots
            }
            wake = wake.min(self.pending_since + REBOOT_DRAIN_TIMEOUT + 1);
        } else if lt_active {
            let Some(lt_wake) = self.lt.next_event_at() else {
                return (0, lt_active);
            };
            // LT's clock only advances on cycles it actually steps, so
            // translate its wake into the global clock (saturating: a
            // forever-quiescent LT reports `u64::MAX`).
            wake = wake.min(self.cycle.saturating_add(lt_wake - self.lt.cycle()));
        }
        (wake.saturating_sub(self.cycle).min(limit), lt_active)
    }

    /// Fast-forwards `n` quiescent cycles. Both `n` and `lt_active` must
    /// come from one [`skip_window`](Self::skip_window) evaluation: the
    /// skip replays exactly the cycles the window proved quiescent, under
    /// exactly the LT participation the proof assumed.
    fn do_skip(&mut self, n: u64, lt_active: bool) {
        debug_assert_eq!(
            lt_active,
            self.lt_runnable(),
            "LT eligibility changed between skip_window and do_skip"
        );
        self.mt.skip_to(self.mt.cycle() + n);
        if lt_active {
            self.lt.skip_to(self.lt.cycle() + n);
        }
        self.cycle += n;
    }

    /// One scheduler quantum — the system's event-source surface: a
    /// single [`step`](Self::step), or (with fast-forwarding on, when the
    /// activity probe shows the previous dispatch already idle) a
    /// proven-quiescent skip bounded by `cap`. Returns the global cycle
    /// at which the system must next be dispatched — its next wakeup.
    /// This is the one advance path under both run loops, so the skip
    /// bookkeeping (occupancy histograms, fetch-bubble accounting inside
    /// `Core::skip_to`) cannot diverge between them.
    fn advance_once(&mut self, cap: u64, last_probe: &mut u64) -> u64 {
        if self.fast_forward {
            // Only pay for the quiescence proof when the previous
            // cycle already looked idle on both cores.
            let probe = self.mt.activity_probe() + self.lt.activity_probe();
            if probe == *last_probe {
                let limit = cap.saturating_sub(self.cycle);
                let (n, lt_active) = self.skip_window(limit);
                if n > 0 {
                    self.do_skip(n, lt_active);
                    return self.cycle;
                }
            }
            *last_probe = probe;
        }
        self.step();
        self.cycle
    }

    /// Runs until MT commits `target` more instructions, halts, or
    /// `max_cycles` pass. Returns the cycles elapsed.
    ///
    /// With fast-forwarding enabled (the default), stretches where both
    /// cores are provably stalled — e.g. LT blocked on DRAM while MT
    /// waits on an empty BOQ — are skipped to the next wakeup instead of
    /// being stepped cycle by cycle, with byte-identical results. The
    /// loop itself is a thin driver pumping a single-actor
    /// [`Kernel`](crate::Kernel) (or the legacy lockstep `while` loop
    /// under `R3DLA_EVENT_KERNEL=0` — byte-identical, kept for the CI
    /// `cmp` gate).
    pub fn run_until_mt(&mut self, target: u64, max_cycles: u64) -> u64 {
        let start_cycles = self.cycle;
        let start_committed = self.mt.committed(0);
        if self.event_kernel {
            let cap = start_cycles.saturating_add(max_cycles);
            let mut kernel = Kernel::new();
            let me = kernel.add_actor();
            kernel.schedule(me, self.cycle);
            let mut last_probe = u64::MAX;
            let mut guard_last = self.cycle;
            while let Some((_, actor)) = kernel.pop() {
                debug_assert_eq!(actor, me);
                if crate::guard::tick_since(self.cycle, &mut guard_last) {
                    break;
                }
                if self.mt.committed(0) - start_committed >= target
                    || self.mt_halted()
                    || self.cycle - start_cycles >= max_cycles
                {
                    break;
                }
                let next = self.advance_once(cap, &mut last_probe);
                kernel.schedule(me, next);
            }
            return self.cycle - start_cycles;
        }
        // Legacy lockstep loop (R3DLA_EVENT_KERNEL=0).
        let mut last_probe = u64::MAX;
        let mut guard_last = self.cycle;
        while self.mt.committed(0) - start_committed < target
            && !self.mt_halted()
            && self.cycle - start_cycles < max_cycles
        {
            if crate::guard::tick_since(self.cycle, &mut guard_last) {
                break;
            }
            if self.fast_forward {
                let probe = self.mt.activity_probe() + self.lt.activity_probe();
                if probe == last_probe {
                    let limit = max_cycles - (self.cycle - start_cycles);
                    let (n, lt_active) = self.skip_window(limit);
                    if n > 0 {
                        self.do_skip(n, lt_active);
                        continue;
                    }
                }
                last_probe = probe;
            }
            self.step();
        }
        self.cycle - start_cycles
    }

    /// Takes a counter snapshot for windowed measurement.
    pub fn snapshot(&self) -> SysSnapshot {
        let shared = self.mt.mem().shared();
        let shared = shared.borrow();
        SysSnapshot {
            cycles: self.cycle,
            mt_committed: self.mt.committed(0),
            lt_committed: self.lt.committed(0),
            mt_counters: self.mt.counters.clone(),
            lt_counters: self.lt.counters.clone(),
            dram: shared.dram_stats().clone(),
            mt_l1d: self.mt.mem().l1d_stats().clone(),
            reboots: self.reboots,
        }
    }

    /// Derives a window report from a snapshot taken earlier.
    pub fn window_since(&self, snap: &SysSnapshot) -> WindowReport {
        let now = self.snapshot();
        let cycles = now.cycles - snap.cycles;
        let mt_committed = now.mt_committed - snap.mt_committed;
        WindowReport {
            cycles,
            mt_committed,
            lt_committed: now.lt_committed - snap.lt_committed,
            mt_ipc: if cycles == 0 {
                0.0
            } else {
                mt_committed as f64 / cycles as f64
            },
            dram_traffic: now.dram.traffic_lines() - snap.dram.traffic_lines(),
            mt_l1d_misses: now.mt_l1d.misses.get() - snap.mt_l1d.misses.get(),
            mt_l1d_accesses: now.mt_l1d.accesses.get() - snap.mt_l1d.accesses.get(),
            reboots: now.reboots - snap.reboots,
        }
    }

    /// Convenience: warm up, then measure a window. Returns the report
    /// over the measured window.
    pub fn measure(&mut self, warmup_insts: u64, window_insts: u64) -> WindowReport {
        measure_window(self, warmup_insts, window_insts)
    }
}

/// The windowed-measurement surface shared by [`DlaSystem`] and
/// [`SingleCoreSim`], so the grid runner, figure binaries and the
/// sampled-simulation harness measure through one entry point
/// ([`measure_window`]) instead of two hand-rolled copies.
pub trait MeasureTarget {
    /// Runs until `target` more instructions commit on the measured
    /// (main) thread, the program halts, or `max_cycles` pass; returns
    /// elapsed cycles.
    fn run_insts(&mut self, target: u64, max_cycles: u64) -> u64;
    /// Takes a consistent counter snapshot.
    fn counters_snapshot(&self) -> SysSnapshot;
    /// Derives the window report for everything since `snap`.
    fn window_report(&self, snap: &SysSnapshot) -> WindowReport;
}

impl MeasureTarget for DlaSystem {
    fn run_insts(&mut self, target: u64, max_cycles: u64) -> u64 {
        self.run_until_mt(target, max_cycles)
    }

    fn counters_snapshot(&self) -> SysSnapshot {
        self.snapshot()
    }

    fn window_report(&self, snap: &SysSnapshot) -> WindowReport {
        self.window_since(snap)
    }
}

impl MeasureTarget for SingleCoreSim {
    fn run_insts(&mut self, target: u64, max_cycles: u64) -> u64 {
        self.run_until(target, max_cycles)
    }

    fn counters_snapshot(&self) -> SysSnapshot {
        self.snapshot()
    }

    fn window_report(&self, snap: &SysSnapshot) -> WindowReport {
        self.window_since(snap)
    }
}

impl KernelActor for DlaSystem {
    fn local_cycle(&self) -> u64 {
        self.cycle
    }

    fn halted(&self) -> bool {
        self.mt_halted()
    }

    fn committed(&self) -> u64 {
        self.mt.committed(0)
    }

    fn advance_quantum(&mut self, cap: u64, last_probe: &mut u64) -> u64 {
        self.advance_once(cap, last_probe)
    }
}

impl KernelActor for SingleCoreSim {
    fn local_cycle(&self) -> u64 {
        self.core.cycle()
    }

    fn halted(&self) -> bool {
        self.core.halted()
    }

    fn committed(&self) -> u64 {
        self.core.committed(0)
    }

    fn advance_quantum(&mut self, cap: u64, last_probe: &mut u64) -> u64 {
        self.advance_once(cap, last_probe)
    }
}

/// Warms up over `warm` committed instructions, then measures a window
/// of `win` — the single measurement helper behind every `measure`
/// method. Cycle budgets match the historical implementations: 60 cycles
/// per targeted instruction plus 500k slack.
pub fn measure_window<S: MeasureTarget + ?Sized>(sys: &mut S, warm: u64, win: u64) -> WindowReport {
    sys.run_insts(warm, warm * 60 + 500_000);
    let snap = sys.counters_snapshot();
    sys.run_insts(win, win * 60 + 500_000);
    sys.window_report(&snap)
}

/// A single-core (non-DLA) simulation wrapper with the same windowed
/// measurement interface — the paper's BL / BL(noPF) / FC configurations.
pub struct SingleCoreSim {
    core: Core,
    cycle: u64,
    fast_forward: bool,
    event_kernel: bool,
}

impl std::fmt::Debug for SingleCoreSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SingleCoreSim")
            .field("cycle", &self.cycle)
            .finish()
    }
}

impl SingleCoreSim {
    /// Builds a conventional core running `built` with the given
    /// prefetchers (names per `r3dla_prefetch::by_name`).
    pub fn build(
        built: &BuiltWorkload,
        core_cfg: CoreConfig,
        mem_cfg: MemConfig,
        l1_prefetcher: Option<&str>,
        l2_prefetcher: Option<&str>,
    ) -> Self {
        Self::build_at(built, core_cfg, mem_cfg, l1_prefetcher, l2_prefetcher, None)
    }

    /// Like [`build`](Self::build), but resumes from an architectural
    /// checkpoint: memory is the image plus the checkpoint delta and the
    /// thread starts at the checkpoint PC/registers. Caches and the
    /// predictor start cold — sampled simulation warms them explicitly.
    pub fn restore_from_checkpoint(
        built: &BuiltWorkload,
        core_cfg: CoreConfig,
        mem_cfg: MemConfig,
        l1_prefetcher: Option<&str>,
        l2_prefetcher: Option<&str>,
        ckpt: &ArchCheckpoint,
    ) -> Self {
        Self::build_at(
            built,
            core_cfg,
            mem_cfg,
            l1_prefetcher,
            l2_prefetcher,
            Some(ckpt),
        )
    }

    fn build_at(
        built: &BuiltWorkload,
        core_cfg: CoreConfig,
        mem_cfg: MemConfig,
        l1_prefetcher: Option<&str>,
        l2_prefetcher: Option<&str>,
        restore: Option<&ArchCheckpoint>,
    ) -> Self {
        let program = Rc::new(built.program.clone());
        let shared = Rc::new(RefCell::new(SharedLlc::new(&mem_cfg)));
        let mut mem = CoreMem::new(&mem_cfg, shared);
        if let Some(name) = l2_prefetcher {
            if let Some(pf) = r3dla_prefetch::by_name(name) {
                mem.set_l2_prefetcher(pf);
            }
        }
        if let Some(name) = l1_prefetcher {
            if let Some(pf) = r3dla_prefetch::by_name(name) {
                mem.set_l1_prefetcher(pf);
            }
        }
        let mut core = Core::new(core_cfg, Rc::clone(&program), mem);
        let arch_mem = Rc::new(RefCell::new(VecMem::new()));
        arch_mem.borrow_mut().load_image(program.image());
        let (start_pc, start_regs) = match restore {
            Some(ckpt) => {
                ckpt.apply_to(&mut arch_mem.borrow_mut());
                (ckpt.pc(), ckpt.regs())
            }
            None => (program.entry(), ArchState::new(program.entry()).regs()),
        };
        let dir = Box::new(PredictorDirection::new(Box::new(Tage::paper())));
        core.add_thread(
            start_pc,
            start_regs,
            dir,
            Rc::new(RefCell::new(BaseMem(arch_mem))),
        );
        Self {
            core,
            cycle: 0,
            fast_forward: true,
            event_kernel: event_kernel_default(),
        }
    }

    /// Enables or disables event-driven cycle skipping in
    /// [`run_until`](Self::run_until) (on by default; behavior-preserving
    /// either way).
    pub fn set_fast_forward(&mut self, on: bool) {
        self.fast_forward = on;
    }

    /// Selects the event-kernel run loop (default per
    /// [`event_kernel_default`](crate::event_kernel_default)); the legacy
    /// polling loop under `R3DLA_EVENT_KERNEL=0` is byte-identical.
    pub fn set_event_kernel(&mut self, on: bool) {
        self.event_kernel = on;
    }

    /// The core (counters, stats).
    pub fn core(&self) -> &Core {
        &self.core
    }

    /// Mutable core access (attaching sinks for profiling).
    pub fn core_mut(&mut self) -> &mut Core {
        &mut self.core
    }

    /// One scheduler quantum — the event-source surface the kernel loop
    /// dispatches: defers to [`Core::advance_quantum`] (step or
    /// proven-quiescent skip) and returns the core's next wakeup.
    fn advance_once(&mut self, cap: u64, last_probe: &mut u64) -> u64 {
        if self.fast_forward {
            self.cycle = self.core.advance_quantum(cap, last_probe);
        } else {
            self.core.step();
            self.cycle = self.core.cycle();
        }
        self.cycle
    }

    /// Runs until `target` more instructions commit, the program halts,
    /// or `max_cycles` pass; returns elapsed cycles. A thin driver
    /// pumping a single-actor [`Kernel`](crate::Kernel) (legacy polling
    /// loop under `R3DLA_EVENT_KERNEL=0`; byte-identical).
    pub fn run_until(&mut self, target: u64, max_cycles: u64) -> u64 {
        let start_cycles = self.core.cycle();
        let start_committed = self.core.committed(0);
        let cap = start_cycles.saturating_add(max_cycles);
        if self.event_kernel {
            let mut kernel = Kernel::new();
            let me = kernel.add_actor();
            kernel.schedule(me, self.core.cycle());
            let mut last_probe = u64::MAX;
            let mut guard_last = self.core.cycle();
            while let Some((_, actor)) = kernel.pop() {
                debug_assert_eq!(actor, me);
                if crate::guard::tick_since(self.core.cycle(), &mut guard_last) {
                    break;
                }
                if self.core.committed(0) - start_committed >= target
                    || self.core.halted()
                    || self.core.cycle() - start_cycles >= max_cycles
                {
                    break;
                }
                let next = self.advance_once(cap, &mut last_probe);
                kernel.schedule(me, next);
            }
            self.cycle = self.core.cycle();
            return self.core.cycle() - start_cycles;
        }
        // Legacy polling loop (R3DLA_EVENT_KERNEL=0).
        let mut last_probe = u64::MAX;
        let mut guard_last = self.core.cycle();
        while self.core.committed(0) - start_committed < target
            && !self.core.halted()
            && self.core.cycle() - start_cycles < max_cycles
        {
            if crate::guard::tick_since(self.core.cycle(), &mut guard_last) {
                break;
            }
            if self.fast_forward {
                self.core.step_or_skip(cap, &mut last_probe);
            } else {
                self.core.step();
            }
        }
        self.cycle = self.core.cycle();
        self.core.cycle() - start_cycles
    }

    /// Takes a counter snapshot for windowed measurement (LT fields are
    /// zero — there is no look-ahead core here).
    pub fn snapshot(&self) -> SysSnapshot {
        SysSnapshot {
            cycles: self.core.cycle(),
            mt_committed: self.core.committed(0),
            lt_committed: 0,
            mt_counters: self.core.counters.clone(),
            lt_counters: ActivityCounters::default(),
            dram: self.core.mem().shared().borrow().dram_stats().clone(),
            mt_l1d: self.core.mem().l1d_stats().clone(),
            reboots: 0,
        }
    }

    /// Derives a window report from a snapshot taken earlier.
    pub fn window_since(&self, snap: &SysSnapshot) -> WindowReport {
        let now = self.snapshot();
        let cycles = now.cycles - snap.cycles;
        let mt_committed = now.mt_committed - snap.mt_committed;
        WindowReport {
            cycles,
            mt_committed,
            lt_committed: 0,
            mt_ipc: if cycles == 0 {
                0.0
            } else {
                mt_committed as f64 / cycles as f64
            },
            dram_traffic: now.dram.traffic_lines() - snap.dram.traffic_lines(),
            mt_l1d_misses: now.mt_l1d.misses.get() - snap.mt_l1d.misses.get(),
            mt_l1d_accesses: now.mt_l1d.accesses.get() - snap.mt_l1d.accesses.get(),
            reboots: 0,
        }
    }

    /// Warm up, then measure a window; returns the window report (the
    /// same shape [`DlaSystem::measure`] produces, LT fields zero).
    pub fn measure(&mut self, warmup_insts: u64, window_insts: u64) -> WindowReport {
        measure_window(self, warmup_insts, window_insts)
    }

    /// Functional warm touch of the data path (sampled-simulation
    /// warmup; no timing or statistics effects).
    pub fn warm_data(&mut self, addr: u64) {
        self.core.mem_mut().warm_data(addr);
    }

    /// Functional warm touch of the instruction path.
    pub fn warm_inst(&mut self, pc: u64) {
        self.core.mem_mut().warm_inst(pc);
    }

    /// Functionally trains the branch predictor with one architectural
    /// outcome.
    pub fn warm_branch(&mut self, pc: u64, taken: bool) {
        self.core.warm_branch(0, pc, taken);
    }

    /// DRAM traffic lines so far.
    pub fn dram_traffic(&self) -> u64 {
        self.core
            .mem()
            .shared()
            .borrow()
            .dram_stats()
            .traffic_lines()
    }
}

// The experiment-descriptor surface must be shareable across the parallel
// runner's worker threads: specs go in, reports come out, while every
// `DlaSystem` (with its `Rc`/`RefCell` internals) stays thread-confined.
#[allow(dead_code)]
fn spec_surface_is_send_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<DlaConfig>();
    assert_send_sync::<SkeletonOptions>();
    assert_send_sync::<crate::skeleton::SkeletonSet>();
    assert_send_sync::<ProfileData>();
    assert_send_sync::<SysSnapshot>();
    assert_send_sync::<WindowReport>();
    assert_send_sync::<BuildError>();
}

#[cfg(test)]
mod tests {
    use super::*;
    use r3dla_isa::{Inst, Op, Reg};
    use r3dla_workloads::{by_name, Scale};

    fn record(inst: Inst, pc: u64) -> CommitRecord {
        CommitRecord {
            thread: 0,
            seq: 0,
            inst,
            pc,
            cycle: 0,
            next_pc: pc + 4,
            taken: None,
            value: None,
            mem_addr: None,
            l1_miss: false,
            l2_miss: false,
            tlb_miss: false,
            dispatch_to_exec: 0,
        }
    }

    fn load_record(pc: u64, addr: u64) -> CommitRecord {
        let inst = Inst {
            op: Op::Ld,
            rd: Reg::int(3),
            rs1: Reg::int(4),
            rs2: Reg::ZERO,
            imm: 0,
        };
        let mut r = record(inst, pc);
        r.mem_addr = Some(addr);
        r.l1_miss = true;
        r
    }

    fn branch_record(pc: u64, taken: bool) -> CommitRecord {
        let inst = Inst {
            op: Op::Bne,
            rd: Reg::ZERO,
            rs1: Reg::int(3),
            rs2: Reg::int(4),
            imm: 0x100,
        };
        let mut r = record(inst, pc);
        r.taken = Some(taken);
        r
    }

    fn test_sink() -> (Rc<RefCell<Boq>>, Rc<RefCell<FootnoteQueue>>, LtSink) {
        let boq = Rc::new(RefCell::new(Boq::new(16)));
        let fq = Rc::new(RefCell::new(FootnoteQueue::new(16)));
        let sink = LtSink {
            boq: Rc::clone(&boq),
            fq: Rc::clone(&fq),
            sif: Rc::new(RefCell::new(Sif::new())),
            value_reuse: false,
            fq_hints: true,
            last_tag: None,
            pending: Vec::new(),
            pending_cap: 16,
        };
        (boq, fq, sink)
    }

    #[test]
    fn pre_branch_hints_wait_for_their_aligning_branch() {
        let (_boq, fq, mut sink) = test_sink();
        // Two hints commit before any conditional branch.
        sink.on_commit(&load_record(0x40, 0x1000));
        sink.on_commit(&load_record(0x44, 0x2000));
        // They must NOT be releasable yet — tag 0 would release them
        // immediately (served tag starts at 0).
        let mut out = Vec::new();
        fq.borrow_mut().release_up_to(0, &mut out);
        assert!(out.is_empty(), "pre-branch hints must be held, got {out:?}");
        assert!(fq.borrow().is_empty(), "hints stay buffered in the sink");
        // The first branch commits: the hints are re-tagged with its tag.
        sink.on_commit(&branch_record(0x48, true));
        fq.borrow_mut().release_up_to(0, &mut out);
        assert!(out.is_empty(), "still held until MT consumes the branch");
        fq.borrow_mut().release_up_to(1, &mut out);
        assert_eq!(
            out,
            vec![Footnote::L1Prefetch(0x1000), Footnote::L1Prefetch(0x2000)],
            "hints release just-in-time with their aligning branch"
        );
    }

    #[test]
    fn post_branch_hints_keep_streaming() {
        let (_boq, fq, mut sink) = test_sink();
        sink.on_commit(&branch_record(0x40, false));
        sink.on_commit(&load_record(0x44, 0x3000));
        let mut out = Vec::new();
        fq.borrow_mut().release_up_to(1, &mut out);
        assert_eq!(out, vec![Footnote::L1Prefetch(0x3000)]);
    }

    #[test]
    fn sink_reset_reenters_pre_branch_holding() {
        let (_boq, fq, mut sink) = test_sink();
        sink.on_commit(&branch_record(0x40, true));
        sink.reset();
        // After a reboot, hints must wait for the first post-reboot
        // branch again instead of reusing the stale tag.
        sink.on_commit(&load_record(0x44, 0x4000));
        let mut out = Vec::new();
        fq.borrow_mut().release_up_to(u64::MAX, &mut out);
        assert!(out.is_empty());
        sink.on_commit(&branch_record(0x48, true));
        fq.borrow_mut().release_up_to(2, &mut out);
        assert_eq!(out, vec![Footnote::L1Prefetch(0x4000)]);
    }

    /// A branchy workload used by the reboot tests (kept in one place so
    /// they stay in sync).
    const MISFEED_WORKLOAD: &str = "xalan_like";

    /// Runs a fixed committed-instruction window over `MISFEED_WORKLOAD`
    /// with a misfeed injected every 5k instructions — a deterministic
    /// misfeed-heavy scenario. `fast_forward` selects the cycle-skipping
    /// path; the report must not depend on it.
    fn misfeed_heavy_window_ff(reboot_cost: u64, fast_forward: bool) -> WindowReport {
        let wl = by_name(MISFEED_WORKLOAD).unwrap().build(Scale::Tiny);
        let mut cfg = DlaConfig::dla();
        cfg.reboot_cost = reboot_cost;
        cfg.profile_insts = 200_000;
        let mut sys = DlaSystem::build(&wl, cfg, SkeletonOptions::default()).unwrap();
        sys.set_fast_forward(fast_forward);
        sys.run_until_mt(2_000, 500_000);
        let snap = sys.snapshot();
        for _ in 0..6 {
            sys.run_until_mt(5_000, 2_000_000);
            sys.inject_misfeed();
        }
        sys.run_until_mt(5_000, 2_000_000);
        sys.window_since(&snap)
    }

    fn misfeed_heavy_window(reboot_cost: u64) -> WindowReport {
        misfeed_heavy_window_ff(reboot_cost, true)
    }

    #[test]
    fn reboot_cost_is_honored() {
        let cheap = misfeed_heavy_window(64);
        assert!(
            cheap.reboots > 0,
            "workload must reboot for this test to be meaningful; got 0"
        );
        let dear = misfeed_heavy_window(200);
        assert_eq!(dear.reboots, cheap.reboots);
        // A costlier register copy stalls the LT restart longer, so the
        // same committed window must take at least as many cycles.
        assert!(
            dear.cycles >= cheap.cycles,
            "reboot_cost=200 finished faster than 64: {} < {}",
            dear.cycles,
            cheap.cycles
        );
        assert!(
            dear != cheap,
            "reboot_cost sweep produced identical WindowReports — the \
             config value is not reaching reboot_thread"
        );
    }

    #[test]
    fn reboot_clears_indirect_target_hints() {
        let wl = by_name(MISFEED_WORKLOAD).unwrap().build(Scale::Tiny);
        let mut sys = DlaSystem::build(&wl, DlaConfig::dla(), SkeletonOptions::default()).unwrap();
        sys.run_until_mt(2_000, 1_000_000);
        // Plant a stale indirect target, then force a misfeed.
        sys.ind_targets.borrow_mut().insert(0xDEAD, 0xBEEF);
        sys.inject_misfeed();
        let before = sys.reboots;
        let limit = sys.cycle() + 200_000;
        while sys.reboots == before && sys.cycle() < limit && !sys.mt_halted() {
            sys.step();
        }
        assert!(sys.reboots > before, "forced misfeed must reboot");
        assert!(
            !sys.ind_targets.borrow().contains_key(&0xDEAD),
            "stale indirect-branch targets must not survive a reboot"
        );
    }

    #[test]
    fn window_report_is_impl_eq() {
        // `reboot_cost_is_honored` compares whole reports; keep the
        // comparison meaningful if fields are added.
        let r = WindowReport {
            cycles: 1,
            mt_committed: 2,
            lt_committed: 3,
            mt_ipc: 2.0,
            dram_traffic: 4,
            mt_l1d_misses: 5,
            mt_l1d_accesses: 6,
            reboots: 7,
        };
        assert_eq!(r, r.clone());
    }

    #[test]
    fn snapshot_window_counter_diffs() {
        let wl = by_name("libq_like").unwrap().build(Scale::Tiny);
        let mut sys = DlaSystem::build(&wl, DlaConfig::dla(), SkeletonOptions::default()).unwrap();
        sys.run_until_mt(1_000, 500_000);
        let snap = sys.snapshot();
        sys.run_until_mt(5_000, 1_000_000);
        let rep = sys.window_since(&snap);
        assert_eq!(rep.cycles, sys.cycle() - snap.cycles);
        assert_eq!(rep.mt_committed, sys.mt().committed(0) - snap.mt_committed);
        assert!(rep.mt_committed >= 5_000);
        let ipc = rep.mt_committed as f64 / rep.cycles as f64;
        assert!((rep.mt_ipc - ipc).abs() < 1e-12);
        assert!(rep.mt_l1d_accesses >= rep.mt_l1d_misses);
    }

    #[test]
    fn zero_cycle_window_reports_zero() {
        let wl = by_name("libq_like").unwrap().build(Scale::Tiny);
        let sys = DlaSystem::build(&wl, DlaConfig::dla(), SkeletonOptions::default()).unwrap();
        let rep = sys.window_since(&sys.snapshot());
        assert_eq!(rep.cycles, 0);
        assert_eq!(rep.mt_committed, 0);
        assert_eq!(rep.mt_ipc, 0.0);
        assert_eq!(rep.dram_traffic, 0);
        assert_eq!(rep.reboots, 0);
    }

    /// Deep fingerprint of a system's observable state for the
    /// skip-equivalence tests: window report plus both cores' activity
    /// counters, per-thread statistics and the MT L1D prefetch counters
    /// (which the footnote-queue hints feed).
    fn system_fingerprint(sys: &DlaSystem, rep: &WindowReport) -> String {
        format!(
            "{rep:?} cycle={} reboots={} mt_counters={:?} lt_counters={:?} \
             mt_stats={:?} lt_stats={:?} l1d={:?}",
            sys.cycle(),
            sys.reboots,
            sys.mt().counters,
            sys.lt().counters,
            sys.mt().thread_stats(0),
            sys.lt().thread_stats(0),
            sys.mt().mem().l1d_stats(),
        )
    }

    /// Runs one DLA config over a workload with skipping on and off and
    /// asserts every observable statistic matches.
    fn assert_skip_equivalent(workload: &str, cfg: DlaConfig, warm: u64, win: u64) {
        let wl = by_name(workload).unwrap().build(Scale::Tiny);
        let run = |fast_forward: bool| {
            let mut sys = DlaSystem::build(&wl, cfg.clone(), SkeletonOptions::default()).unwrap();
            sys.set_fast_forward(fast_forward);
            sys.run_until_mt(warm, warm * 60 + 500_000);
            let snap = sys.snapshot();
            sys.run_until_mt(win, win * 60 + 500_000);
            let rep = sys.window_since(&snap);
            system_fingerprint(&sys, &rep)
        };
        assert_eq!(run(true), run(false), "{workload}: skip on/off diverged");
    }

    #[test]
    fn skip_equivalence_under_hint_queue_wakeups() {
        // libq_like is memory-bound: the FQ carries a steady stream of
        // L1-prefetch/TLB hints whose releases must not be jumped over,
        // and both cores spend long stretches stalled — the prime
        // fast-forward scenario. dla() keeps every hint kind enabled.
        let mut cfg = DlaConfig::dla();
        cfg.profile_insts = 200_000;
        assert_skip_equivalent("libq_like", cfg, 2_000, 10_000);
    }

    #[test]
    fn skip_equivalence_under_tiny_boq_freeze_thaw() {
        // A 4-entry BOQ makes the LT freeze (queue full) and thaw (MT
        // consumes an outcome) every few cycles, so LT wake-eligibility
        // flips constantly. Regression test for the asymmetric skip
        // accounting this exercised: `skip_window` evaluates eligibility
        // once, bounds the window by the events that could change it,
        // and `do_skip` replays exactly that evaluation.
        let mut cfg = DlaConfig::dla();
        cfg.profile_insts = 200_000;
        cfg.boq_capacity = 4;
        assert_skip_equivalent("libq_like", cfg, 2_000, 10_000);
    }

    #[test]
    fn skip_equivalence_with_value_reuse_and_t1() {
        // The full R3 feature set: value-reuse footnotes, T1 prefetch
        // drains and dynamic recycling all ride the per-cycle paths the
        // skipper must respect.
        let mut cfg = DlaConfig::r3();
        cfg.profile_insts = 200_000;
        assert_skip_equivalent("rgbyuv_like", cfg, 2_000, 10_000);
    }

    #[test]
    fn skip_equivalence_across_reboots() {
        // Misfeed-driven reboots interleave drain windows, LT freezes and
        // queue flushes with the skipping machinery (reboot mid-skip).
        let fast = misfeed_heavy_window_ff(64, true);
        let slow = misfeed_heavy_window_ff(64, false);
        assert!(fast.reboots > 0, "scenario must actually reboot");
        assert_eq!(fast, slow, "reboot path diverged between skip on/off");
    }

    #[test]
    fn window_counts_reboots() {
        let wl = by_name(MISFEED_WORKLOAD).unwrap().build(Scale::Tiny);
        let mut sys = DlaSystem::build(&wl, DlaConfig::dla(), SkeletonOptions::default()).unwrap();
        sys.run_until_mt(1_000, 500_000);
        let snap = sys.snapshot();
        sys.inject_misfeed();
        let limit = sys.cycle() + 200_000;
        while sys.reboots == snap.reboots && sys.cycle() < limit && !sys.mt_halted() {
            sys.step();
        }
        let rep = sys.window_since(&snap);
        assert_eq!(rep.reboots, sys.reboots - snap.reboots);
        assert!(rep.reboots >= 1);
    }
}
