//! Deterministic discrete-event kernel: a calendar queue over
//! `(time, seq)` keys with FIFO tie-breaking, actor bookkeeping with
//! cancel/re-arm on top of it ([`Kernel`]), and the multi-tenant
//! [`Cluster`] driver that hosts several simulated systems — e.g. two
//! [`DlaSystem`](crate::DlaSystem)s sharing an LLC/DRAM model — under
//! one global clock.
//!
//! # The wakeup contract
//!
//! An actor is anything that can answer "when must I next be
//! dispatched?" after every advance. The cores' `next_event_at()` gives
//! a *lower bound* on the next architecturally visible action: waking an
//! actor early is always safe (it proves quiescence again and goes back
//! to sleep), waking it late never happens. Because a provably quiescent
//! stretch replayed by `skip_to` is byte-identical to stepping it, *any*
//! dispatch schedule that respects the bound produces the same simulated
//! state — which is why the event-driven loop, the legacy lockstep loop
//! (`R3DLA_EVENT_KERNEL=0`) and any interleaving of cluster tenants all
//! agree to the bit.
//!
//! # Determinism rules
//!
//! * Events are totally ordered by `(time, seq)`; `seq` is a monotone
//!   insertion counter, so same-cycle events dispatch in the order they
//!   were scheduled (FIFO) — never by actor id, hash order or heap
//!   shape.
//! * Re-arming an actor bumps its generation; a stale event left in the
//!   queue is skipped at pop. Cancellation is O(1) and never reorders
//!   live events.
//! * [`Cluster`] dispatches whichever tenant's local clock is earliest
//!   (ties by schedule order), so shared-LLC/DRAM state mutations occur
//!   in nondecreasing global-time order regardless of tenant count.

use std::cell::RefCell;
use std::rc::Rc;

use r3dla_mem::SharedLlc;

use crate::system::{MeasureTarget, SysSnapshot, WindowReport};

/// Identifies an actor registered with a [`Kernel`] (dense, starting
/// at 0 in registration order).
pub type ActorId = usize;

/// Whether the event-kernel run loop is enabled by default, read from
/// the `R3DLA_EVENT_KERNEL` environment variable at system construction
/// (anything but `"0"`, including unset, means on). The legacy lockstep
/// loop behind `R3DLA_EVENT_KERNEL=0` is byte-identical and exists so CI
/// can `cmp` the two paths; tests toggle per instance via
/// `set_event_kernel` instead, because environment variables are racy
/// under a parallel test harness.
pub fn event_kernel_default() -> bool {
    std::env::var_os("R3DLA_EVENT_KERNEL").is_none_or(|v| v != "0")
}

/// Buckets in the calendar wheel: one simulated cycle each. Core wakeups
/// are almost always within a few hundred cycles (an MSHR or DRAM
/// completion), so the common case is a constant-time bucket append;
/// only far-future wakeups (reboot drain timeouts, `u64::MAX` "never"
/// parks) take the overflow path.
const WHEEL_BUCKETS: usize = 512;

#[derive(Clone, Copy, Debug)]
struct Event {
    time: u64,
    seq: u64,
    actor: ActorId,
    generation: u64,
}

/// A deterministic calendar queue: a wheel of one-cycle buckets plus a
/// far-future overflow list, ordered by `(time, seq)` with FIFO
/// tie-breaking.
///
/// The queue never reorders same-key events: within a bucket, events are
/// stored in insertion (`seq`) order, and the overflow list is sorted by
/// `(time, seq)` — unique keys — before being redistributed when the
/// wheel drains past its horizon.
///
/// # Examples
///
/// ```
/// use r3dla_core::EventQueue;
///
/// let mut q = EventQueue::new();
/// q.push(7, 1, 0);
/// q.push(3, 0, 0);
/// q.push(7, 2, 0); // same cycle as actor 1: FIFO after it
/// assert_eq!(q.pop().map(|(t, a, _)| (t, a)), Some((3, 0)));
/// assert_eq!(q.pop().map(|(t, a, _)| (t, a)), Some((7, 1)));
/// assert_eq!(q.pop().map(|(t, a, _)| (t, a)), Some((7, 2)));
/// assert!(q.pop().is_none());
/// ```
pub struct EventQueue {
    wheel: Vec<Vec<Event>>,
    far: Vec<Event>,
    /// Simulated time of wheel bucket 0.
    base: u64,
    /// Next wheel bucket to drain; buckets before it are empty.
    cursor: usize,
    seq: u64,
    len: usize,
}

impl Default for EventQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl EventQueue {
    /// An empty queue based at time 0.
    pub fn new() -> Self {
        Self {
            wheel: (0..WHEEL_BUCKETS).map(|_| Vec::new()).collect(),
            far: Vec::new(),
            base: 0,
            cursor: 0,
            seq: 0,
            len: 0,
        }
    }

    /// Number of queued events (stale generations included — the
    /// [`Kernel`] filters those at pop).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Enqueues a wakeup for `actor` at `time` tagged with `generation`;
    /// returns the event's sequence number. Times earlier than the
    /// current drain point are clamped to it ("schedule in the past"
    /// means "fire as soon as possible", after anything already queued
    /// for that cycle).
    pub fn push(&mut self, time: u64, actor: ActorId, generation: u64) -> u64 {
        let floor = self.base.saturating_add(self.cursor as u64);
        let time = time.max(floor);
        let seq = self.seq;
        self.seq += 1;
        let ev = Event {
            time,
            seq,
            actor,
            generation,
        };
        match time.checked_sub(self.base) {
            Some(d) if d < self.wheel.len() as u64 => self.wheel[d as usize].push(ev),
            _ => self.far.push(ev),
        }
        self.len += 1;
        seq
    }

    /// Removes and returns the earliest event as
    /// `(time, actor, generation)`; `None` when empty.
    pub fn pop(&mut self) -> Option<(u64, ActorId, u64)> {
        if self.len == 0 {
            return None;
        }
        loop {
            while self.cursor < self.wheel.len() {
                let bucket = &mut self.wheel[self.cursor];
                if !bucket.is_empty() {
                    let ev = bucket.remove(0);
                    self.len -= 1;
                    return Some((ev.time, ev.actor, ev.generation));
                }
                self.cursor += 1;
            }
            // Wheel drained: rebase it onto the earliest far event. `len
            // > 0` with an empty wheel implies `far` is non-empty.
            self.rebase();
        }
    }

    /// Moves the wheel window to start at the earliest overflow event and
    /// redistributes every overflow event inside the new horizon. The
    /// buckets are empty here (the wheel just drained), and the overflow
    /// list is sorted by the unique `(time, seq)` key first, so
    /// within-bucket insertion order equals seq order — FIFO survives the
    /// rebase.
    fn rebase(&mut self) {
        debug_assert!(!self.far.is_empty());
        self.far.sort_unstable_by_key(|e| (e.time, e.seq));
        self.base = self.far[0].time;
        self.cursor = 0;
        let mut keep = Vec::new();
        for ev in self.far.drain(..) {
            // Offset arithmetic, not an absolute horizon: `base + len`
            // saturates near `u64::MAX` (the "never" park time) and would
            // otherwise strand the earliest event in the far list forever.
            let d = ev.time - self.base;
            if d < self.wheel.len() as u64 {
                self.wheel[d as usize].push(ev);
            } else {
                keep.push(ev);
            }
        }
        self.far = keep;
    }
}

/// The discrete-event scheduler: an [`EventQueue`] plus per-actor
/// generation counters, so each actor has at most one *live* wakeup and
/// re-arming or cancelling never has to search the queue.
///
/// # Examples
///
/// ```
/// use r3dla_core::Kernel;
///
/// let mut k = Kernel::new();
/// let a = k.add_actor();
/// let b = k.add_actor();
/// k.schedule(a, 10);
/// k.schedule(b, 10); // same cycle: dispatches after `a` (FIFO)
/// k.schedule(a, 5); // re-arm: the wakeup at 10 is now stale
/// assert_eq!(k.pop(), Some((5, a)));
/// assert_eq!(k.pop(), Some((10, b)));
/// assert_eq!(k.pop(), None);
/// assert_eq!(k.now(), 10);
/// ```
pub struct Kernel {
    queue: EventQueue,
    generations: Vec<u64>,
    armed: Vec<bool>,
    live: usize,
    now: u64,
    // Dispatch accounting (plain fields, not atomics: the kernel is
    // single-threaded and these must cost nothing). Surfaced through
    // [`stats`](Self::stats) for the telemetry sidecar.
    dispatched: u64,
    stale_dropped: u64,
}

/// Dispatch counters for one [`Kernel`], or accumulated across a
/// [`Cluster`]'s run phases: how many live wakeups were dispatched and
/// how many stale events (re-armed or cancelled wakeups) were drained
/// and dropped on the way. The ratio is a direct health signal for the
/// calendar queue — a high stale fraction means actors re-arm far more
/// often than they fire.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Live events returned by [`Kernel::pop`].
    pub dispatched: u64,
    /// Stale events consumed and skipped while hunting for live ones.
    pub stale_dropped: u64,
}

impl Default for Kernel {
    fn default() -> Self {
        Self::new()
    }
}

impl Kernel {
    /// An empty kernel at time 0 with no actors.
    pub fn new() -> Self {
        Self {
            queue: EventQueue::new(),
            generations: Vec::new(),
            armed: Vec::new(),
            live: 0,
            now: 0,
            dispatched: 0,
            stale_dropped: 0,
        }
    }

    /// Dispatch accounting since construction.
    pub fn stats(&self) -> KernelStats {
        KernelStats {
            dispatched: self.dispatched,
            stale_dropped: self.stale_dropped,
        }
    }

    /// Registers a new actor; ids are dense and start at 0.
    pub fn add_actor(&mut self) -> ActorId {
        self.generations.push(0);
        self.armed.push(false);
        self.generations.len() - 1
    }

    /// Current kernel time: the timestamp of the last dispatched event.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Whether `actor` has a live (not cancelled, not yet dispatched)
    /// wakeup.
    pub fn armed(&self, actor: ActorId) -> bool {
        self.armed[actor]
    }

    /// Whether no actor has a live wakeup — the kernel's run loop is
    /// done.
    pub fn is_idle(&self) -> bool {
        self.live == 0
    }

    /// Arms (or re-arms) `actor`'s single wakeup at time `at` (clamped to
    /// [`now`](Self::now)). Any previously scheduled wakeup becomes stale
    /// and is skipped at pop — re-arming is how an actor moves its own
    /// wakeup earlier when new information (say, another tenant's fill)
    /// arrives.
    pub fn schedule(&mut self, actor: ActorId, at: u64) {
        self.generations[actor] += 1;
        if !self.armed[actor] {
            self.armed[actor] = true;
            self.live += 1;
        }
        self.queue
            .push(at.max(self.now), actor, self.generations[actor]);
    }

    /// Cancels `actor`'s live wakeup, if any. O(1): the queued event goes
    /// stale and is dropped when it surfaces.
    pub fn cancel(&mut self, actor: ActorId) {
        if self.armed[actor] {
            self.armed[actor] = false;
            self.live -= 1;
            self.generations[actor] += 1;
        }
    }

    /// Dispatches the earliest live wakeup: advances
    /// [`now`](Self::now) to its time, disarms the actor, and returns
    /// `(time, actor)`. Stale events (re-armed or cancelled) are consumed
    /// and skipped. Returns `None` when no live wakeups remain.
    pub fn pop(&mut self) -> Option<(u64, ActorId)> {
        while let Some((time, actor, generation)) = self.queue.pop() {
            if self.armed[actor] && self.generations[actor] == generation {
                self.armed[actor] = false;
                self.live -= 1;
                debug_assert!(time >= self.now, "calendar queue went backwards");
                self.now = time;
                self.dispatched += 1;
                return Some((time, actor));
            }
            self.stale_dropped += 1;
        }
        debug_assert_eq!(self.live, 0);
        None
    }
}

/// The event-source surface a simulated system exposes to a [`Kernel`]:
/// a local clock, halt/commit observation, and a single-quantum advance
/// that reports when the system must next be dispatched.
///
/// Implementations must guarantee **progress** (`advance_quantum`
/// strictly increases `local_cycle`) and the **wakeup contract** (the
/// returned dispatch time is the local clock after the advance: either
/// the next cycle, or the end of a proven-quiescent skip — never beyond
/// the first possible architectural action).
pub trait KernelActor {
    /// The actor's local clock, in the shared global time base (all
    /// cluster tenants start at cycle 0).
    fn local_cycle(&self) -> u64;
    /// Whether the measured program has halted — the actor will never
    /// make progress again.
    fn halted(&self) -> bool;
    /// Committed instructions on the measured (main) thread.
    fn committed(&self) -> u64;
    /// Advances one scheduler quantum: a single cycle step, or a
    /// proven-quiescent skip never reaching past `cap`. Returns the cycle
    /// at which the kernel must next dispatch this actor (the new local
    /// clock). `last_probe` is the actor's activity-probe memo — the
    /// same cheap "did anything happen since last time?" gate the
    /// single-system run loops use — owned by the caller so the actor
    /// stays borrowable between dispatches.
    fn advance_quantum(&mut self, cap: u64, last_probe: &mut u64) -> u64;
}

/// Per-tenant dispatch bookkeeping inside [`Cluster`].
struct TenantState {
    start_cycle: u64,
    start_committed: u64,
    last_probe: u64,
    done: bool,
}

/// N simulated systems under one [`Kernel`] and one global clock — the
/// multi-tenant scenario (several systems contending for one shared
/// LLC/DRAM, built via
/// [`DlaSystem::assemble_shared`](crate::DlaSystem::assemble_shared)).
///
/// # Lifecycle
///
/// 1. Create the shared memory side and a cluster around it
///    ([`Cluster::with_shared`]), or a plain [`Cluster::new`] for
///    independent tenants.
/// 2. [`push`](Self::push) each tenant (any [`KernelActor`]; every
///    tenant of a shared cluster must have been assembled over the same
///    `SharedLlc` handle).
/// 3. [`run_until_each`](Self::run_until_each) /
///    [`measure_each`](Self::measure_each): one kernel interleaves all
///    tenants by earliest local clock; a tenant that reaches its target
///    (or halts, or exhausts its cycle budget) parks and stops
///    contending, and under `measure_each` its window report is captured
///    at that moment.
///
/// # Determinism
///
/// Dispatch order is a pure function of the tenants' initial state:
/// earliest local clock first, FIFO on ties. Tenants only touch the
/// shared LLC/DRAM while *stepping* (a skipped window is proven free of
/// memory-system activity), so shared-state mutations occur in
/// nondecreasing global-time order and two runs of the same cluster are
/// byte-identical. When a shared LLC is attached, each quantum is
/// additionally capped at [`SharedLlc::next_event_at`] — a pending fill
/// (possibly another tenant's) re-dispatches every tenant at its
/// completion rather than letting them sleep through it. The cap only
/// ever shortens skips, which the wakeup contract makes behavior-free.
pub struct Cluster<T> {
    tenants: Vec<T>,
    shared: Option<Rc<RefCell<SharedLlc>>>,
    kstats: KernelStats,
}

impl<T> Default for Cluster<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Cluster<T> {
    /// An empty cluster of independent tenants (no shared wake coupling).
    pub fn new() -> Self {
        Self {
            tenants: Vec::new(),
            shared: None,
            kstats: KernelStats::default(),
        }
    }

    /// An empty cluster whose tenants share `shared`; their skip windows
    /// are bounded by its next MSHR/DRAM completion so one tenant's fill
    /// wakes the others.
    pub fn with_shared(shared: Rc<RefCell<SharedLlc>>) -> Self {
        Self {
            tenants: Vec::new(),
            shared: Some(shared),
            kstats: KernelStats::default(),
        }
    }

    /// Dispatch accounting accumulated over every run/measure phase of
    /// this cluster (each phase pumps a fresh [`Kernel`]; totals add
    /// up here). Telemetry-only — never feeds report bytes.
    pub fn kernel_stats(&self) -> KernelStats {
        self.kstats
    }

    /// Adds a tenant; returns its index (dispatch id and report order).
    pub fn push(&mut self, tenant: T) -> usize {
        self.tenants.push(tenant);
        self.tenants.len() - 1
    }

    /// Number of tenants.
    pub fn len(&self) -> usize {
        self.tenants.len()
    }

    /// Whether the cluster has no tenants.
    pub fn is_empty(&self) -> bool {
        self.tenants.is_empty()
    }

    /// The tenants, in push order.
    pub fn tenants(&self) -> &[T] {
        &self.tenants
    }

    /// Mutable tenant access (attaching observers, toggling knobs).
    pub fn tenants_mut(&mut self) -> &mut [T] {
        &mut self.tenants
    }
}

impl<T: KernelActor> Cluster<T> {
    /// Pumps one kernel until every tenant is done (committed `target`
    /// more instructions, halted, or `max_cycles` elapsed on its local
    /// clock); `on_park` fires exactly once per tenant at the moment it
    /// finishes, while every still-running tenant is frozen at a local
    /// clock ≥ the parking tenant's.
    fn pump(&mut self, target: u64, max_cycles: u64, mut on_park: impl FnMut(usize, &T)) {
        let mut kernel = Kernel::new();
        let mut states: Vec<TenantState> = Vec::with_capacity(self.tenants.len());
        for (i, t) in self.tenants.iter().enumerate() {
            let id = kernel.add_actor();
            debug_assert_eq!(id, i);
            kernel.schedule(id, t.local_cycle());
            states.push(TenantState {
                start_cycle: t.local_cycle(),
                start_committed: t.committed(),
                last_probe: u64::MAX,
                done: false,
            });
        }
        let shared = self.shared.clone();
        while let Some((_, i)) = kernel.pop() {
            let tenant = &mut self.tenants[i];
            let st = &mut states[i];
            if tenant.committed() - st.start_committed >= target
                || tenant.halted()
                || tenant.local_cycle() - st.start_cycle >= max_cycles
            {
                st.done = true;
                on_park(i, tenant);
                continue;
            }
            let mut cap = st.start_cycle.saturating_add(max_cycles);
            if let Some(shared) = &shared {
                if let Some(wake) = shared.borrow().next_event_at(tenant.local_cycle()) {
                    cap = cap.min(wake);
                }
            }
            // Progress even when the shared cap is already behind us: a
            // zero-width skip window degenerates to a plain step.
            let before = tenant.local_cycle();
            let next = tenant.advance_quantum(cap.max(tenant.local_cycle()), &mut st.last_probe);
            if crate::guard::tick(tenant.local_cycle() - before) {
                break;
            }
            kernel.schedule(i, next);
        }
        let s = kernel.stats();
        self.kstats.dispatched += s.dispatched;
        self.kstats.stale_dropped += s.stale_dropped;
        debug_assert!(crate::guard::interrupted() || states.iter().all(|s| s.done));
    }

    /// Runs every tenant until each has committed `target` more
    /// instructions, halted, or spent `max_cycles`; tenants interleave
    /// through one kernel in global-time order. Returns the largest
    /// per-tenant elapsed cycle count.
    pub fn run_until_each(&mut self, target: u64, max_cycles: u64) -> u64 {
        let starts: Vec<u64> = self.tenants.iter().map(|t| t.local_cycle()).collect();
        self.pump(target, max_cycles, |_, _| {});
        self.tenants
            .iter()
            .zip(&starts)
            .map(|(t, s)| t.local_cycle() - s)
            .max()
            .unwrap_or(0)
    }
}

impl<T: KernelActor + MeasureTarget> Cluster<T> {
    /// Warms every tenant up over `warm` committed instructions (still
    /// contending), then measures a window of `win` per tenant. Each
    /// report is captured the moment its tenant crosses the target, so a
    /// tenant that finishes early does not accumulate the others'
    /// residual shared-channel traffic. Cycle budgets match
    /// [`measure_window`](crate::measure_window). Note `dram_traffic`
    /// counts the *shared* channel: in a shared-LLC cluster it includes
    /// lines moved for co-running tenants.
    pub fn measure_each(&mut self, warm: u64, win: u64) -> Vec<WindowReport> {
        self.run_until_each(warm, warm * 60 + 500_000);
        let snaps: Vec<SysSnapshot> = self.tenants.iter().map(|t| t.counters_snapshot()).collect();
        let mut reports: Vec<Option<WindowReport>> = self.tenants.iter().map(|_| None).collect();
        self.pump(win, win * 60 + 500_000, |i, t| {
            reports[i] = Some(t.window_report(&snaps[i]));
        });
        reports
            .into_iter()
            .enumerate()
            // A missing report means pump was interrupted by the cell
            // guard before this tenant parked; hand back the partial
            // window — the supervisor discards the cell as timed out.
            .map(|(i, r)| r.unwrap_or_else(|| self.tenants[i].window_report(&snaps[i])))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Same-cycle events dispatch in schedule order, not actor-id order.
    #[test]
    fn fifo_tie_break_is_schedule_order() {
        let mut k = Kernel::new();
        let a = k.add_actor();
        let b = k.add_actor();
        let c = k.add_actor();
        k.schedule(b, 42);
        k.schedule(a, 42);
        k.schedule(c, 42);
        assert_eq!(k.pop(), Some((42, b)));
        assert_eq!(k.pop(), Some((42, a)));
        assert_eq!(k.pop(), Some((42, c)));
        assert_eq!(k.pop(), None);
        assert!(k.is_idle());
    }

    /// Total order is (time, seq) across a mix of near, same-cycle and
    /// far-horizon events, including ones past the wheel.
    #[test]
    fn same_cycle_multi_actor_ordering_across_horizons() {
        let mut q = EventQueue::new();
        q.push(7, 0, 0);
        q.push(3, 1, 0);
        q.push(7, 2, 0);
        q.push(100_000, 3, 0); // far beyond the wheel
        q.push(3, 4, 0);
        q.push(100_000, 5, 0);
        let order: Vec<(u64, ActorId)> = std::iter::from_fn(|| q.pop())
            .map(|(t, a, _)| (t, a))
            .collect();
        assert_eq!(
            order,
            vec![(3, 1), (3, 4), (7, 0), (7, 2), (100_000, 3), (100_000, 5)]
        );
    }

    /// Re-arming moves the wakeup and the stale event never dispatches;
    /// cancelling silences the actor entirely.
    #[test]
    fn cancel_and_rearm_drop_stale_wakeups() {
        let mut k = Kernel::new();
        let a = k.add_actor();
        let b = k.add_actor();
        k.schedule(a, 50);
        k.schedule(b, 20);
        k.schedule(a, 10); // re-arm earlier: the 50 is stale
        assert_eq!(k.pop(), Some((10, a)));
        k.schedule(a, 30);
        k.cancel(a);
        assert!(!k.armed(a));
        assert_eq!(k.pop(), Some((20, b)));
        assert_eq!(k.pop(), None, "cancelled wakeup must not dispatch");
        // Re-arm after cancel works and time keeps monotone. The queue
        // drained through the stale wakeup at 50 while hunting for live
        // ones, so "as soon as possible" is 50 — harmless: the dispatch
        // time is informational, actors advance from their own clock.
        k.schedule(a, 5);
        assert_eq!(k.pop(), Some((50, a)));
        assert_eq!(k.now(), 50);
    }

    /// Draining far past the wheel horizon repeatedly (forcing rebases)
    /// preserves (time, seq) order.
    #[test]
    fn rebase_preserves_order() {
        let mut q = EventQueue::new();
        // Spread events over many wheel windows, inserted out of order.
        let times = [5_000u64, 1, 700, 5_000, 2_000_000, 700, 90_000];
        for (i, &t) in times.iter().enumerate() {
            q.push(t, i, 0);
        }
        let order: Vec<(u64, ActorId)> = std::iter::from_fn(|| q.pop())
            .map(|(t, a, _)| (t, a))
            .collect();
        assert_eq!(
            order,
            vec![
                (1, 1),
                (700, 2),
                (700, 5),
                (5_000, 0),
                (5_000, 3),
                (90_000, 6),
                (2_000_000, 4)
            ]
        );
    }

    /// Interleaved push/pop at the same cycle keeps FIFO order, and a
    /// `u64::MAX` "never" park stays queued without overflow.
    #[test]
    fn same_cycle_push_during_drain_and_never_park() {
        let mut k = Kernel::new();
        let a = k.add_actor();
        let b = k.add_actor();
        k.schedule(a, 10);
        k.schedule(b, u64::MAX);
        assert_eq!(k.pop(), Some((10, a)));
        k.schedule(a, 10); // same cycle as the dispatch we just took
        assert_eq!(k.pop(), Some((10, a)));
        k.cancel(b);
        assert_eq!(k.pop(), None);
    }
}
