//! Value reuse (paper §III-D1): the Slow Instruction Filter (SIF) and the
//! main-thread value-prediction source fed from footnote-queue entries.

use std::collections::{HashMap, HashSet, VecDeque};

use r3dla_cpu::ValueSource;
use r3dla_stats::Counter;

/// The Slow Instruction Filter: a Bloom filter of PCs whose
/// dispatch-to-execute latency exceeded the threshold during the
/// identification window at the start of each loop, minus PCs whose
/// predictions went wrong ("deleted from the SIF").
#[derive(Debug)]
pub struct Sif {
    bloom: [u64; 8],
    deleted: HashSet<u64>,
    current_loop: Option<u64>,
    iters_in_loop: u32,
    /// Latency threshold in cycles (paper: 20).
    pub latency_threshold: u64,
    /// Identification window in loop iterations (paper: 8).
    pub ident_iters: u32,
    /// Mispredicted PCs removed so far.
    pub deletions: Counter,
}

impl Sif {
    /// Creates an empty SIF with the paper's thresholds.
    pub fn new() -> Self {
        Self {
            bloom: [0; 8],
            deleted: HashSet::new(),
            current_loop: None,
            iters_in_loop: 0,
            latency_threshold: 20,
            ident_iters: 8,
            deletions: Counter::new(),
        }
    }

    fn hashes(pc: u64) -> (usize, usize) {
        let h1 = (pc >> 2).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let h2 = (pc >> 2).wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
        ((h1 >> 55) as usize, (h2 >> 55) as usize)
    }

    fn bloom_insert(&mut self, pc: u64) {
        let (a, b) = Self::hashes(pc);
        self.bloom[a / 64] |= 1 << (a % 64);
        self.bloom[b / 64] |= 1 << (b % 64);
    }

    fn bloom_contains(&self, pc: u64) -> bool {
        let (a, b) = Self::hashes(pc);
        self.bloom[a / 64] & (1 << (a % 64)) != 0 && self.bloom[b / 64] & (1 << (b % 64)) != 0
    }

    /// MT-side: tracks loop context from committed backward-taken
    /// branches; entering a new loop clears the filter (paper: "The SIF
    /// is cleared upon entering a new loop").
    pub fn on_loop_branch(&mut self, target_pc: u64) {
        match self.current_loop {
            Some(l) if l == target_pc => {
                self.iters_in_loop = self.iters_in_loop.saturating_add(1);
            }
            _ => {
                self.current_loop = Some(target_pc);
                self.iters_in_loop = 0;
                self.bloom = [0; 8];
                self.deleted.clear();
            }
        }
    }

    /// MT-side: records a committed instruction's observed latency during
    /// the identification window.
    pub fn observe_latency(&mut self, pc: u64, dispatch_to_exec: u64) {
        if self.iters_in_loop < self.ident_iters && dispatch_to_exec >= self.latency_threshold {
            self.bloom_insert(pc);
        }
    }

    /// LT-side: whether to allocate a value-reuse entry for `pc`
    /// ("LT checks this table at commit stage").
    pub fn should_reuse(&self, pc: u64) -> bool {
        self.bloom_contains(pc) && !self.deleted.contains(&pc)
    }

    /// Confidence feedback: a misprediction deletes the static
    /// instruction from the filter.
    pub fn on_mispredict(&mut self, pc: u64) {
        if self.deleted.insert(pc) {
            self.deletions.inc();
        }
    }
}

impl Default for Sif {
    fn default() -> Self {
        Self::new()
    }
}

/// The MT-side value-prediction source: holds released FQ value entries
/// keyed by `(BOQ tag, pc)` until the rename stage asks for them.
///
/// The paper aligns FQ value entries by an offset from the preceding
/// branch; since LT commits only skeleton instructions, we key by the
/// producing PC within the governing branch's window — the same
/// alignment, with the PC cross-check built in.
#[derive(Debug)]
pub struct VrSource {
    pending: HashMap<(u64, u64), u64>, // (tag, pc) -> value
    order: VecDeque<(u64, u64)>,
    capacity: usize,
    /// Mispredicted PCs reported back (drained by the system into the
    /// shared SIF).
    pub mispredicted_pcs: Vec<u64>,
    /// Predictions served.
    pub served: Counter,
    /// Entries that expired unused.
    pub expired: Counter,
}

impl VrSource {
    /// Creates a source bounded to `capacity` pending entries.
    pub fn new(capacity: usize) -> Self {
        Self {
            pending: HashMap::new(),
            order: VecDeque::new(),
            capacity,
            mispredicted_pcs: Vec::new(),
            served: Counter::new(),
            expired: Counter::new(),
        }
    }

    /// Accepts a released FQ value entry.
    pub fn insert(&mut self, tag: u64, pc: u64, value: u64) {
        while self.pending.len() >= self.capacity {
            match self.order.pop_front() {
                Some(old) => {
                    if self.pending.remove(&old).is_some() {
                        self.expired.inc();
                    }
                }
                None => break,
            }
        }
        if self.pending.insert((tag, pc), value).is_none() {
            self.order.push_back((tag, pc));
        }
    }

    /// Drops everything (reboot).
    pub fn clear(&mut self) {
        self.pending.clear();
        self.order.clear();
    }

    /// Number of pending entries.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Whether no entries are pending.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }
}

impl ValueSource for VrSource {
    fn predict(&mut self, pc: u64, branch_seq: u64, _offset: u32) -> Option<u64> {
        match self.pending.get(&(branch_seq, pc)) {
            Some(&value) => {
                self.served.inc();
                Some(value)
            }
            None => None,
        }
    }

    fn on_outcome(&mut self, pc: u64, correct: bool) {
        if !correct {
            self.mispredicted_pcs.push(pc);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sif_learns_slow_instructions_within_window() {
        let mut sif = Sif::new();
        sif.on_loop_branch(0x100);
        sif.observe_latency(0x200, 25);
        sif.observe_latency(0x204, 3);
        assert!(sif.should_reuse(0x200));
        assert!(!sif.should_reuse(0x204));
    }

    #[test]
    fn sif_stops_learning_after_ident_window() {
        let mut sif = Sif::new();
        sif.on_loop_branch(0x100);
        for _ in 0..10 {
            sif.on_loop_branch(0x100); // 10 iterations
        }
        sif.observe_latency(0x300, 50);
        assert!(!sif.should_reuse(0x300), "beyond the 8-iteration window");
    }

    #[test]
    fn sif_clears_on_new_loop() {
        let mut sif = Sif::new();
        sif.on_loop_branch(0x100);
        sif.observe_latency(0x200, 25);
        assert!(sif.should_reuse(0x200));
        sif.on_loop_branch(0x900); // different loop
        assert!(!sif.should_reuse(0x200));
    }

    #[test]
    fn sif_deletes_mispredicted_pcs() {
        let mut sif = Sif::new();
        sif.on_loop_branch(0x100);
        sif.observe_latency(0x200, 30);
        sif.on_mispredict(0x200);
        assert!(!sif.should_reuse(0x200));
        assert_eq!(sif.deletions.get(), 1);
    }

    #[test]
    fn vr_source_serves_matching_entries_only() {
        let mut vr = VrSource::new(32);
        vr.insert(7, 0x400, 1234);
        // Wrong tag / pc → no prediction.
        assert_eq!(vr.predict(0x400, 8, 0), None);
        assert_eq!(vr.predict(0x444, 7, 0), None);
        // Exact match serves the value.
        assert_eq!(vr.predict(0x400, 7, 0), Some(1234));
        assert_eq!(vr.served.get(), 1);
    }

    #[test]
    fn vr_source_bounded_capacity() {
        let mut vr = VrSource::new(2);
        vr.insert(1, 0x1, 10);
        vr.insert(2, 0x2, 20);
        vr.insert(3, 0x3, 30); // evicts (1, 0x1)
        assert_eq!(vr.len(), 2);
        assert_eq!(vr.predict(0x1, 1, 0), None);
        assert_eq!(vr.predict(0x3, 3, 0), Some(30));
    }

    #[test]
    fn vr_outcome_feedback_collects_mispredicts() {
        let mut vr = VrSource::new(8);
        vr.on_outcome(0x10, true);
        vr.on_outcome(0x20, false);
        assert_eq!(vr.mispredicted_pcs, vec![0x20]);
    }
}
