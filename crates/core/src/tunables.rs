//! Canonical configuration serialization for design-space exploration
//! (the `r3dla-dse` crate's content-addressed result cache).
//!
//! Off-line tuning ([`static_tune`](crate::static_tune)) searches one
//! axis (skeleton versions) of one configuration; the DSE subsystem
//! searches the whole `DlaConfig × SkeletonOptions` space and must be
//! able to *name* each point stably: two runs that simulate the same
//! point must derive the same cache key, and any knob change must change
//! it. Derived `Debug` output is not that name — `RecycleMode::Static`
//! carries a `HashMap` whose iteration order is unspecified — so this
//! module provides an explicit canonical form.
//!
//! The canonical key lists every field that can influence a simulation
//! result, in a fixed order, with floats rendered by Rust's
//! shortest-round-trip formatter (two floats share a rendering iff they
//! are the same value).

use crate::skeleton::SkeletonOptions;
use crate::system::DlaConfig;
use crate::RecycleMode;

/// Renders a float in its shortest round-trip form (`{:?}`), so canonical
/// keys are stable and distinct floats never collide.
fn f(v: f64) -> String {
    format!("{v:?}")
}

impl RecycleMode {
    /// A short, stable label of the mode *kind* (`off`, `dynamic`,
    /// `static`) — what CLIs and reports print.
    pub fn kind_label(&self) -> &'static str {
        match self {
            RecycleMode::Off => "off",
            RecycleMode::Dynamic => "dynamic",
            RecycleMode::Static(_) => "static",
        }
    }

    /// The canonical serialization of the mode, including a
    /// deterministically ordered dump of a static map (sorted by loop
    /// PC) — unlike derived `Debug`, which inherits `HashMap`'s
    /// unspecified iteration order.
    pub fn canonical_key(&self) -> String {
        match self {
            RecycleMode::Static(map) => {
                let mut pairs: Vec<(u64, usize)> = map.iter().map(|(&k, &v)| (k, v)).collect();
                pairs.sort_unstable();
                let body: Vec<String> = pairs
                    .iter()
                    .map(|(pc, v)| format!("{pc:#x}->{v}"))
                    .collect();
                format!("static[{}]", body.join(","))
            }
            other => other.kind_label().to_string(),
        }
    }
}

impl SkeletonOptions {
    /// Canonical `key=value` serialization of every skeleton-construction
    /// threshold, in declaration order. Equal options produce equal keys;
    /// changing any field changes the key.
    pub fn canonical_key(&self) -> String {
        format!(
            "l1_seed_rate={};l2_seed_rate={};max_mem_dep_distance={};\
             t1_stride_ratio={};t1_min_instances={};vr_latency={};\
             vr_min_dependents={};bias_threshold={};bias_min_instances={}",
            f(self.l1_seed_rate),
            f(self.l2_seed_rate),
            self.max_mem_dep_distance,
            f(self.t1_stride_ratio),
            self.t1_min_instances,
            f(self.vr_latency),
            self.vr_min_dependents,
            f(self.bias_threshold),
            self.bias_min_instances,
        )
    }
}

impl DlaConfig {
    /// Canonical `key=value` serialization of the whole configuration —
    /// every field that can influence a simulated result, including the
    /// nested core and memory configurations (whose derived `Debug` is
    /// deterministic: they are plain scalar structs).
    ///
    /// This is the configuration half of a DSE cache key: two configs
    /// produce the same key iff every knob matches.
    pub fn canonical_key(&self) -> String {
        format!(
            "boq={};fq={};reboot_cost={};t1={};t1_entries={};value_reuse={};\
             vr_capacity={};recycle={};mt_l2_pf={};lt_l2_pf={};mt_l1_pf={};\
             profile_insts={};fq_hints={};mt_core={:?};lt_core={:?};mem={:?}",
            self.boq_capacity,
            self.fq_capacity,
            self.reboot_cost,
            self.t1,
            self.t1_entries,
            self.value_reuse,
            self.vr_capacity,
            self.recycle.canonical_key(),
            self.mt_l2_prefetcher.unwrap_or("none"),
            self.lt_l2_prefetcher.unwrap_or("none"),
            self.mt_l1_prefetcher.unwrap_or("none"),
            self.profile_insts,
            self.fq_hints,
            self.mt_core,
            self.lt_core,
            self.mem,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn equal_configs_share_a_key() {
        assert_eq!(
            DlaConfig::r3().canonical_key(),
            DlaConfig::r3().canonical_key()
        );
        assert_eq!(
            SkeletonOptions::default().canonical_key(),
            SkeletonOptions::default().canonical_key()
        );
    }

    #[test]
    fn every_dla_knob_moves_the_key() {
        let base = DlaConfig::dla().canonical_key();
        let mutations: Vec<DlaConfig> = vec![
            {
                let mut c = DlaConfig::dla();
                c.boq_capacity = 256;
                c
            },
            {
                let mut c = DlaConfig::dla();
                c.fq_capacity = 64;
                c
            },
            {
                let mut c = DlaConfig::dla();
                c.t1 = true;
                c
            },
            {
                let mut c = DlaConfig::dla();
                c.t1_entries = 8;
                c
            },
            {
                let mut c = DlaConfig::dla();
                c.value_reuse = true;
                c
            },
            {
                let mut c = DlaConfig::dla();
                c.vr_capacity = 16;
                c
            },
            {
                let mut c = DlaConfig::dla();
                c.recycle = RecycleMode::Dynamic;
                c
            },
            {
                let mut c = DlaConfig::dla();
                c.mt_l2_prefetcher = Some("stride");
                c
            },
            DlaConfig::dla().without_prefetcher(),
            {
                let mut c = DlaConfig::dla();
                c.mt_core.fetch_buffer = 32;
                c
            },
            {
                let mut c = DlaConfig::dla();
                c.reboot_cost = 32;
                c
            },
        ];
        let mut seen = std::collections::HashSet::new();
        seen.insert(base);
        for m in mutations {
            assert!(
                seen.insert(m.canonical_key()),
                "mutation failed to move the canonical key: {m:?}"
            );
        }
    }

    #[test]
    fn every_skeleton_threshold_moves_the_key() {
        let base = SkeletonOptions::default();
        let mut seen = std::collections::HashSet::new();
        seen.insert(base.canonical_key());
        macro_rules! mutate {
            ($field:ident, $value:expr) => {{
                let mut o = SkeletonOptions::default();
                o.$field = $value;
                assert!(
                    seen.insert(o.canonical_key()),
                    concat!(stringify!($field), " failed to move the key")
                );
            }};
        }
        mutate!(l1_seed_rate, 0.05);
        mutate!(l2_seed_rate, 0.01);
        mutate!(max_mem_dep_distance, 500);
        mutate!(t1_stride_ratio, 0.8);
        mutate!(t1_min_instances, 32);
        mutate!(vr_latency, 10.0);
        mutate!(vr_min_dependents, 3);
        mutate!(bias_threshold, 0.9);
        mutate!(bias_min_instances, 50);
    }

    #[test]
    fn static_map_serialization_is_order_independent() {
        let mut a = HashMap::new();
        a.insert(0x2000u64, 1usize);
        a.insert(0x1000, 2);
        a.insert(0x3000, 0);
        let mut b = HashMap::new();
        b.insert(0x3000u64, 0usize);
        b.insert(0x1000, 2);
        b.insert(0x2000, 1);
        assert_eq!(
            RecycleMode::Static(a).canonical_key(),
            RecycleMode::Static(b).canonical_key()
        );
        assert_eq!(RecycleMode::Dynamic.canonical_key(), "dynamic");
        assert_eq!(RecycleMode::Off.kind_label(), "off");
    }
}
