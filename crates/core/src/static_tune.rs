//! Off-line (static) skeleton tuning (paper §III-E2): run each skeleton
//! version on a training window, attribute main-thread performance to
//! loops, and emit the per-loop best-version map consumed by
//! [`RecycleMode::Static`](crate::RecycleMode).
//!
//! The paper favours this approach for simple recycling ("we believe the
//! offline approach is more advisable as we need no architectural support
//! other than performance counters").

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use r3dla_cpu::{CommitRecord, CommitSink};

use crate::system::{DlaConfig, DlaSystem};
use crate::RecycleMode;

/// Accumulates per-loop committed instructions and cycles on the main
/// thread, using the same loop identification as the runtime controller
/// (two consecutive instances of a backward conditional branch).
#[derive(Debug, Default)]
struct LoopProfiler {
    current_loop: Option<u64>,
    last_backward_target: Option<u64>,
    window_start_committed: u64,
    window_start_cycle: u64,
    committed: u64,
    /// loop pc → (instructions, cycles)
    totals: HashMap<u64, (u64, u64)>,
}

impl LoopProfiler {
    fn flush(&mut self, cycle: u64) {
        if let Some(lp) = self.current_loop {
            let insts = self.committed - self.window_start_committed;
            let cycles = cycle.saturating_sub(self.window_start_cycle);
            let e = self.totals.entry(lp).or_insert((0, 0));
            e.0 += insts;
            e.1 += cycles;
        }
        self.window_start_committed = self.committed;
    }
}

impl CommitSink for LoopProfiler {
    fn on_commit(&mut self, rec: &CommitRecord) {
        self.committed += 1;
        if !rec.inst.is_cond_branch() || rec.taken != Some(true) || rec.next_pc >= rec.pc {
            return;
        }
        let target = rec.next_pc;
        let consecutive = self.last_backward_target == Some(target);
        self.last_backward_target = Some(target);
        if !consecutive {
            return;
        }
        if self.current_loop != Some(target) {
            self.flush(rec.cycle);
            self.current_loop = Some(target);
            self.window_start_cycle = rec.cycle;
            self.window_start_committed = self.committed;
        }
    }
}

/// Runs each skeleton version over a training window and returns the
/// per-loop best-version map (paper §III-E2's off-line tuning), plus the
/// number of loops attributed.
///
/// `make_system` builds a fresh system per version (so each run starts
/// cold and identical); `window` is the committed-instruction budget per
/// version.
pub fn static_tune(
    mut make_system: impl FnMut() -> DlaSystem,
    versions: usize,
    window: u64,
) -> (HashMap<u64, usize>, usize) {
    // per loop: best (ipc, version)
    let mut best: HashMap<u64, (f64, usize)> = HashMap::new();
    for v in 0..versions {
        let mut sys = make_system();
        sys.active_skeleton().borrow_mut().switch_to(v);
        let profiler = Rc::new(RefCell::new(LoopProfiler::default()));
        sys.set_mt_observer(profiler.clone());
        sys.run_until_mt(window, window * 60 + 500_000);
        let mut p = profiler.borrow_mut();
        let final_cycle = sys.cycle();
        p.flush(final_cycle);
        for (&loop_pc, &(insts, cycles)) in &p.totals {
            if insts < 1_000 || cycles == 0 {
                continue; // too small to attribute meaningfully
            }
            let ipc = insts as f64 / cycles as f64;
            let e = best.entry(loop_pc).or_insert((0.0, 0));
            if ipc > e.0 {
                *e = (ipc, v);
            }
        }
    }
    let loops = best.len();
    (best.into_iter().map(|(k, (_, v))| (k, v)).collect(), loops)
}

/// Convenience: tunes and returns a ready-to-use static recycle mode.
pub fn static_recycle_mode(
    make_system: impl FnMut() -> DlaSystem,
    versions: usize,
    window: u64,
) -> RecycleMode {
    let (map, _) = static_tune(make_system, versions, window);
    RecycleMode::Static(map)
}

/// Builds a statically tuned system for a config: tunes on a training
/// window, then assembles the final system with the resulting map.
pub fn build_static_tuned(base: &DlaSystem, cfg: DlaConfig, tune_window: u64) -> DlaSystem {
    let program = Rc::clone(base.program());
    let skeletons = base.active_skeleton().borrow().set().clone();
    let profile = base.profile.clone();
    let versions = skeletons.len();
    let mk = {
        let program = Rc::clone(&program);
        let skeletons = skeletons.clone();
        let profile = profile.clone();
        let cfg = cfg.clone();
        move || {
            let mut c = cfg.clone();
            c.recycle = RecycleMode::Off;
            DlaSystem::assemble(Rc::clone(&program), c, skeletons.clone(), profile.clone())
        }
    };
    let mode = static_recycle_mode(mk, versions, tune_window);
    let mut c = cfg;
    c.recycle = mode;
    DlaSystem::assemble(program, c, skeletons, profile)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::skeleton::SkeletonOptions;
    use r3dla_workloads::{by_name, Scale};

    #[test]
    fn tuner_attributes_loops_and_produces_a_map() {
        let wl = by_name("hmmer_like").unwrap().build(Scale::Tiny);
        let base = DlaSystem::build(&wl, DlaConfig::dla(), SkeletonOptions::default()).unwrap();
        let program = Rc::clone(base.program());
        let skeletons = base.active_skeleton().borrow().set().clone();
        let profile = base.profile.clone();
        let (map, loops) = static_tune(
            || {
                DlaSystem::assemble(
                    Rc::clone(&program),
                    DlaConfig::dla(),
                    skeletons.clone(),
                    profile.clone(),
                )
            },
            skeletons.len(),
            30_000,
        );
        assert!(loops > 0, "at least one loop must be attributed");
        for &v in map.values() {
            assert!(v < skeletons.len());
        }
    }

    #[test]
    fn statically_tuned_system_runs() {
        let wl = by_name("libq_like").unwrap().build(Scale::Tiny);
        let base = DlaSystem::build(&wl, DlaConfig::dla(), SkeletonOptions::default()).unwrap();
        let mut tuned = build_static_tuned(&base, DlaConfig::dla(), 20_000);
        let rep = tuned.measure(5_000, 20_000);
        assert!(rep.mt_ipc > 0.0);
        assert!(matches!(
            tuned.recycle_controller().borrow().mode(),
            RecycleMode::Static(_)
        ));
    }
}
