//! Cooperative per-cell execution guard: a thread-local cancel token and
//! simulated-cycle budget that every run loop polls, so a supervisor can
//! stop a runaway cell (wedged configuration, pathological workload)
//! without killing its worker thread.
//!
//! The guard is cooperative on purpose. Simulation state is
//! thread-confined `Rc`/`RefCell` soup that cannot be torn down safely
//! from outside, so instead of forcibly unwinding a stuck worker, the
//! supervisor trips a shared [`AtomicBool`] (its watchdog thread) or
//! installs a cycle budget up front, and the run loops — `DlaSystem`,
//! `SingleCoreSim`, `Cluster`, the ported baselines, and the functional
//! fast-forward in `r3dla-sample` — bail out at the next iteration. The
//! supervisor then reads [`interrupt_cause`], discards the partial
//! result, and reports the cell as timed out.
//!
//! When no guard is installed (the default — every direct call to
//! `measure`/`run_until*` outside a supervised pool), [`tick`] is a
//! single thread-local flag read per loop iteration and nothing changes
//! behaviorally; deterministic reports stay byte-identical.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Why the guarded cell was interrupted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interrupt {
    /// The supervisor's watchdog tripped the cancel token (the cell
    /// overran its wall-clock deadline).
    Cancelled,
    /// The installed simulated-cycle budget ran out.
    BudgetExhausted,
}

/// Cycles of simulated progress between polls of the (cross-thread)
/// cancel token. The budget check is pure thread-local arithmetic and
/// runs on every tick; the atomic load is amortized.
const TOKEN_POLL_CYCLES: u64 = 4_096;

thread_local! {
    static ACTIVE: Cell<bool> = const { Cell::new(false) };
    static TOKEN: std::cell::RefCell<Option<Arc<AtomicBool>>> =
        const { std::cell::RefCell::new(None) };
    /// Remaining simulated-cycle budget; `u64::MAX` means unlimited.
    static REMAINING: Cell<u64> = const { Cell::new(u64::MAX) };
    /// Cycles accumulated since the cancel token was last polled.
    static SINCE_POLL: Cell<u64> = const { Cell::new(0) };
    static CAUSE: Cell<Option<Interrupt>> = const { Cell::new(None) };
}

/// RAII installation of a guard for the current thread. Run loops on
/// this thread honor the token/budget until the guard drops; dropping
/// restores the previous (usually inactive) state, so a cell can never
/// leak its guard into the next cell on the same worker.
#[derive(Debug)]
pub struct CellGuard {
    prev_active: bool,
    prev_token: Option<Arc<AtomicBool>>,
    prev_remaining: u64,
    prev_cause: Option<Interrupt>,
}

impl CellGuard {
    /// Installs a cancel token and/or a simulated-cycle budget for the
    /// current thread. With both `None` the guard is inert (loops stay
    /// on the one-flag fast path).
    pub fn install(token: Option<Arc<AtomicBool>>, cycle_budget: Option<u64>) -> CellGuard {
        let prev = CellGuard {
            prev_active: ACTIVE.get(),
            prev_token: TOKEN.with(|t| t.borrow().clone()),
            prev_remaining: REMAINING.get(),
            prev_cause: CAUSE.get(),
        };
        ACTIVE.set(token.is_some() || cycle_budget.is_some());
        REMAINING.set(cycle_budget.unwrap_or(u64::MAX));
        TOKEN.with(|t| *t.borrow_mut() = token);
        SINCE_POLL.set(0);
        CAUSE.set(None);
        prev
    }
}

impl Drop for CellGuard {
    fn drop(&mut self) {
        ACTIVE.set(self.prev_active);
        REMAINING.set(self.prev_remaining);
        TOKEN.with(|t| *t.borrow_mut() = self.prev_token.take());
        SINCE_POLL.set(0);
        CAUSE.set(self.prev_cause);
    }
}

/// Charges `cycles` of simulated progress against the installed guard
/// and reports whether the current cell should stop. Run loops call this
/// once per iteration with the cycles they just advanced; functional
/// fast-forward charges one cycle per emulated instruction. Without an
/// installed guard this is a single thread-local read.
#[inline]
pub fn tick(cycles: u64) -> bool {
    if !ACTIVE.get() {
        return false;
    }
    tick_slow(cycles)
}

#[cold]
fn tick_slow(cycles: u64) -> bool {
    if CAUSE.get().is_some() {
        return true;
    }
    let rem = REMAINING.get();
    if rem != u64::MAX {
        if cycles >= rem {
            REMAINING.set(0);
            CAUSE.set(Some(Interrupt::BudgetExhausted));
            return true;
        }
        REMAINING.set(rem - cycles);
    }
    let since = SINCE_POLL.get().saturating_add(cycles.max(1));
    if since < TOKEN_POLL_CYCLES {
        SINCE_POLL.set(since);
        return false;
    }
    SINCE_POLL.set(0);
    let tripped = TOKEN.with(|t| {
        t.borrow()
            .as_ref()
            .is_some_and(|tok| tok.load(Ordering::Relaxed))
    });
    if tripped {
        CAUSE.set(Some(Interrupt::Cancelled));
    }
    tripped
}

/// Convenience for loops that track an absolute clock: charges the delta
/// since `*last` and updates it. Equivalent to `tick(now - *last)`.
#[inline]
pub fn tick_since(now: u64, last: &mut u64) -> bool {
    let delta = now.saturating_sub(*last);
    *last = now;
    tick(delta)
}

/// Why the current guard fired, if it has. The supervisor reads this
/// (before dropping the [`CellGuard`]) to classify a cell that returned
/// early as timed out rather than short-but-successful.
pub fn interrupt_cause() -> Option<Interrupt> {
    CAUSE.get()
}

/// Whether the current guard has fired (loops that only need a yes/no).
#[inline]
pub fn interrupted() -> bool {
    ACTIVE.get() && CAUSE.get().is_some()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inactive_guard_never_fires() {
        assert!(!tick(u64::MAX));
        assert!(!interrupted());
        assert_eq!(interrupt_cause(), None);
    }

    #[test]
    fn budget_exhaustion_trips_and_latches() {
        let _g = CellGuard::install(None, Some(10_000));
        assert!(!tick(4_000));
        assert!(!tick(4_000));
        assert!(tick(4_000), "30k > 10k budget must trip");
        assert_eq!(interrupt_cause(), Some(Interrupt::BudgetExhausted));
        assert!(tick(0), "an interrupted guard stays interrupted");
        assert!(interrupted());
    }

    #[test]
    fn cancel_token_trips_within_poll_interval() {
        let token = Arc::new(AtomicBool::new(false));
        let _g = CellGuard::install(Some(Arc::clone(&token)), None);
        assert!(!tick(1));
        token.store(true, Ordering::Relaxed);
        // The token is polled every TOKEN_POLL_CYCLES of progress.
        let mut fired = false;
        for _ in 0..2 {
            fired |= tick(TOKEN_POLL_CYCLES);
        }
        assert!(fired);
        assert_eq!(interrupt_cause(), Some(Interrupt::Cancelled));
    }

    #[test]
    fn drop_restores_previous_state() {
        {
            let _outer = CellGuard::install(None, Some(5));
            {
                let _inner = CellGuard::install(None, None);
                assert!(!tick(u64::MAX), "inner guard is inert");
            }
            assert!(tick(100), "outer budget applies again after inner drop");
        }
        assert!(!tick(u64::MAX), "no guard after all drops");
        assert_eq!(interrupt_cause(), None);
    }

    #[test]
    fn tick_since_charges_deltas() {
        let _g = CellGuard::install(None, Some(1_000));
        let mut last = 500u64;
        assert!(!tick_since(900, &mut last));
        assert_eq!(last, 900);
        assert!(tick_since(5_000, &mut last), "4100 > remaining budget");
    }
}
