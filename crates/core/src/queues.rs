//! The Branch Outcome Queue (BOQ) and Footnote Queue (FQ) connecting the
//! look-ahead core to the main core (paper §III-A), plus the
//! BOQ-driven fetch-direction source for the main thread.

use std::cell::RefCell;
use std::rc::Rc;

use r3dla_cpu::FetchDirection;
use r3dla_isa::FxHashMap;
use r3dla_stats::Counter;

/// One BOQ entry: a committed conditional-branch outcome from LT.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoqEntry {
    /// Branch direction.
    pub taken: bool,
    /// Monotone tag assigned at push; aligns footnote-queue entries.
    pub tag: u64,
}

/// The Branch Outcome Queue.
///
/// LT pushes outcomes at commit; MT consumes them at fetch. Consumed
/// entries are retained until the corresponding MT branch *commits*, so a
/// replay can rewind consumption (`restore`). The number of unread
/// entries is the look-ahead depth (paper: 512-entry BOQ bounds it).
#[derive(Debug)]
pub struct Boq {
    entries: std::collections::VecDeque<BoqEntry>,
    consume_pos: usize,
    capacity: usize,
    next_tag: u64,
    last_served_tag: u64,
    /// Set when MT detected a wrong direction fed from the BOQ — the
    /// system must reboot LT (paper §III-A ­).
    pub misfeed: bool,
    /// Total outcomes pushed.
    pub pushed: Counter,
    /// Total outcomes consumed (including re-consumption after replays).
    pub consumed: Counter,
}

impl Boq {
    /// Creates a BOQ with the given capacity (paper: 512).
    pub fn new(capacity: usize) -> Self {
        Self {
            entries: std::collections::VecDeque::with_capacity(capacity),
            consume_pos: 0,
            capacity,
            next_tag: 1,
            last_served_tag: 0,
            misfeed: false,
            pushed: Counter::new(),
            consumed: Counter::new(),
        }
    }

    /// Whether LT should stall: unread depth reached capacity.
    pub fn full(&self) -> bool {
        self.entries.len() - self.consume_pos >= self.capacity
    }

    /// Unread entries — the current look-ahead depth in dynamic basic
    /// blocks (paper §III-A ®).
    pub fn depth(&self) -> usize {
        self.entries.len() - self.consume_pos
    }

    /// Pushes an outcome from LT commit; returns its tag.
    pub fn push(&mut self, taken: bool) -> u64 {
        let tag = self.next_tag;
        self.next_tag += 1;
        self.entries.push_back(BoqEntry { taken, tag });
        self.pushed.inc();
        tag
    }

    /// MT fetch consumes the next prediction.
    pub fn consume(&mut self) -> Option<BoqEntry> {
        let e = *self.entries.get(self.consume_pos)?;
        self.consume_pos += 1;
        self.last_served_tag = e.tag;
        self.consumed.inc();
        Some(e)
    }

    /// Tag of the most recently served prediction.
    pub fn last_served_tag(&self) -> u64 {
        self.last_served_tag
    }

    /// MT committed a conditional branch: retire the front entry.
    pub fn commit_front(&mut self) -> Option<BoqEntry> {
        let e = self.entries.pop_front()?;
        self.consume_pos = self.consume_pos.saturating_sub(1);
        Some(e)
    }

    /// Snapshot of the consumption cursor (for squash recovery).
    pub fn consume_cursor(&self) -> usize {
        self.consume_pos
    }

    /// Rewinds the consumption cursor after a squash.
    pub fn rewind(&mut self, cursor: usize) {
        self.consume_pos = cursor.min(self.entries.len());
    }

    /// Clears everything (reboot).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.consume_pos = 0;
        self.misfeed = false;
    }
}

/// Typed footnote-queue entries (paper §III-A: "branch target addresses
/// and prefetch addresses … wider data"; §III-D1 adds value-reuse
/// entries).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Footnote {
    /// Prefetch this address into MT's L1D when released.
    L1Prefetch(u64),
    /// Prefill this translation in MT's DTLB.
    TlbHint(u64),
    /// Predicted target for the indirect branch at `pc`.
    BranchTarget {
        /// Indirect branch PC.
        pc: u64,
        /// Its committed target in LT.
        target: u64,
    },
    /// A value-reuse entry: the LT-computed result of the instruction at
    /// `pc`, which is `offset` instructions after BOQ entry `tag`.
    Value {
        /// Aligning BOQ tag.
        tag: u64,
        /// Distance from the aligning branch.
        offset: u32,
        /// Producing instruction PC (cross-check).
        pc: u64,
        /// The value.
        value: u64,
    },
}

/// The Footnote Queue: bounded, tag-ordered hint channel.
///
/// Entries are released to MT when the BOQ entry with a tag ≥ theirs is
/// consumed — the paper's just-in-time prefetch release (§III-A ¯).
#[derive(Debug)]
pub struct FootnoteQueue {
    entries: std::collections::VecDeque<(u64, Footnote)>,
    capacity: usize,
    /// Hints dropped because the queue was full.
    pub dropped: Counter,
    /// Hints pushed successfully.
    pub pushed: Counter,
}

impl FootnoteQueue {
    /// Creates an FQ with the given capacity (paper: 128).
    pub fn new(capacity: usize) -> Self {
        Self {
            entries: std::collections::VecDeque::with_capacity(capacity),
            capacity,
            dropped: Counter::new(),
            pushed: Counter::new(),
        }
    }

    /// Pushes a footnote associated with BOQ tag `tag`; drops when full.
    pub fn push(&mut self, tag: u64, note: Footnote) {
        if self.entries.len() >= self.capacity {
            self.dropped.inc();
            return;
        }
        self.entries.push_back((tag, note));
        self.pushed.inc();
    }

    /// Releases all entries with tag ≤ `served_tag` into `out`.
    pub fn release_up_to(&mut self, served_tag: u64, out: &mut Vec<Footnote>) {
        while let Some(&(tag, note)) = self.entries.front() {
            if tag > served_tag {
                break;
            }
            out.push(note);
            self.entries.pop_front();
        }
    }

    /// Whether [`release_up_to`](Self::release_up_to) with `served_tag`
    /// would deliver anything — the cycle-skipping path must not
    /// fast-forward past a pending release.
    pub fn has_releasable(&self, served_tag: u64) -> bool {
        self.entries
            .front()
            .is_some_and(|&(tag, _)| tag <= served_tag)
    }

    /// Entries currently queued.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Clears everything (reboot).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

/// MT's fetch-direction source: reads the BOQ instead of a predictor
/// (paper §III-A: "its fetch unit draws branch direction predictions from
/// the BOQ instead of its branch predictor").
pub struct BoqDirection {
    boq: Rc<RefCell<Boq>>,
    /// Indirect-target hints delivered through the FQ.
    pub ind_targets: Rc<RefCell<FxHashMap<u64, u64>>>,
}

impl BoqDirection {
    /// Creates the source over a shared BOQ.
    pub fn new(boq: Rc<RefCell<Boq>>, ind_targets: Rc<RefCell<FxHashMap<u64, u64>>>) -> Self {
        Self { boq, ind_targets }
    }
}

impl std::fmt::Debug for BoqDirection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BoqDirection").finish_non_exhaustive()
    }
}

impl FetchDirection for BoqDirection {
    fn name(&self) -> &str {
        "boq"
    }

    fn predict(&mut self, _pc: u64) -> Option<bool> {
        self.boq.borrow_mut().consume().map(|e| e.taken)
    }

    fn available(&self) -> bool {
        self.boq.borrow().depth() > 0
    }

    fn indirect_target(&mut self, pc: u64) -> Option<u64> {
        self.ind_targets.borrow().get(&pc).copied()
    }

    fn resolve(&mut self, _pc: u64, _taken: bool, mispredicted: bool) {
        if mispredicted {
            self.boq.borrow_mut().misfeed = true;
        }
    }

    fn last_tag(&self) -> Option<u64> {
        Some(self.boq.borrow().last_served_tag())
    }

    fn snapshot(&self) -> u64 {
        self.boq.borrow().consume_cursor() as u64
    }

    fn restore(&mut self, snapshot: u64, resolved: Option<bool>) {
        let mut boq = self.boq.borrow_mut();
        boq.rewind(snapshot as usize);
        if resolved.is_some() {
            // The squashing instruction was itself a conditional branch;
            // its entry stays consumed.
            let _ = boq.consume();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boq_push_consume_commit_cycle() {
        let mut b = Boq::new(4);
        let t1 = b.push(true);
        let t2 = b.push(false);
        assert_eq!(b.depth(), 2);
        assert_eq!(b.consume().map(|e| e.taken), Some(true));
        assert_eq!(b.last_served_tag(), t1);
        assert_eq!(b.depth(), 1);
        assert_eq!(b.consume().map(|e| e.taken), Some(false));
        assert_eq!(b.last_served_tag(), t2);
        assert_eq!(b.consume(), None);
        // Commit retires entries front-first.
        assert_eq!(b.commit_front().map(|e| e.tag), Some(t1));
        assert_eq!(b.commit_front().map(|e| e.tag), Some(t2));
        assert_eq!(b.commit_front(), None);
    }

    #[test]
    fn boq_full_bounds_lookahead_depth() {
        let mut b = Boq::new(2);
        b.push(true);
        assert!(!b.full());
        b.push(true);
        assert!(b.full());
        b.consume();
        assert!(!b.full());
    }

    #[test]
    fn boq_rewind_reconsumes_entries() {
        let mut b = Boq::new(8);
        b.push(true);
        b.push(false);
        let cursor = b.consume_cursor();
        assert_eq!(b.consume().map(|e| e.taken), Some(true));
        assert_eq!(b.consume().map(|e| e.taken), Some(false));
        b.rewind(cursor);
        // Same predictions replay after a squash.
        assert_eq!(b.consume().map(|e| e.taken), Some(true));
        assert_eq!(b.consume().map(|e| e.taken), Some(false));
    }

    #[test]
    fn fq_release_by_tag() {
        let mut fq = FootnoteQueue::new(8);
        fq.push(1, Footnote::L1Prefetch(0x100));
        fq.push(2, Footnote::TlbHint(0x200));
        fq.push(5, Footnote::L1Prefetch(0x300));
        let mut out = Vec::new();
        fq.release_up_to(2, &mut out);
        assert_eq!(
            out,
            vec![Footnote::L1Prefetch(0x100), Footnote::TlbHint(0x200)]
        );
        out.clear();
        fq.release_up_to(10, &mut out);
        assert_eq!(out, vec![Footnote::L1Prefetch(0x300)]);
        assert!(fq.is_empty());
    }

    #[test]
    fn fq_drops_when_full() {
        let mut fq = FootnoteQueue::new(1);
        fq.push(1, Footnote::TlbHint(1));
        fq.push(1, Footnote::TlbHint(2));
        assert_eq!(fq.len(), 1);
        assert_eq!(fq.dropped.get(), 1);
    }

    #[test]
    fn boq_direction_stalls_on_empty_and_detects_misfeed() {
        let boq = Rc::new(RefCell::new(Boq::new(4)));
        let targets = Rc::new(RefCell::new(FxHashMap::default()));
        let mut dir = BoqDirection::new(Rc::clone(&boq), targets);
        assert_eq!(dir.predict(0x40), None, "empty BOQ must stall fetch");
        boq.borrow_mut().push(true);
        assert_eq!(dir.predict(0x40), Some(true));
        dir.resolve(0x40, false, true);
        assert!(boq.borrow().misfeed);
    }

    #[test]
    fn boq_reboot_flush_resets_everything() {
        let mut b = Boq::new(4);
        b.push(true);
        b.push(false);
        b.consume();
        b.misfeed = true;
        b.clear();
        assert_eq!(b.depth(), 0);
        assert_eq!(b.consume_cursor(), 0);
        assert!(!b.misfeed);
        assert_eq!(b.consume(), None);
        assert_eq!(b.commit_front(), None);
        // Tags keep growing across reboots so FQ alignment stays unique.
        let t = b.push(true);
        assert!(t >= 3, "tags must not be reissued after a reboot: got {t}");
    }

    #[test]
    fn boq_counters_track_push_and_consume() {
        let mut b = Boq::new(8);
        for i in 0..5 {
            b.push(i % 2 == 0);
        }
        for _ in 0..3 {
            b.consume();
        }
        // A squash replays two entries.
        b.rewind(1);
        b.consume();
        b.consume();
        assert_eq!(b.pushed.get(), 5);
        assert_eq!(b.consumed.get(), 5, "re-consumption after replay counts");
        assert_eq!(b.depth(), 2);
    }

    #[test]
    fn boq_backpressure_follows_unread_depth() {
        // `full()` gates LT pushes on *unread* depth (the look-ahead
        // distance), not physical occupancy: MT consuming an entry frees
        // push capacity immediately, while consumed-but-uncommitted
        // entries are retained for squash replay without counting
        // against it.
        let mut b = Boq::new(2);
        b.push(true);
        b.push(true);
        assert!(b.full());
        b.consume();
        b.consume();
        assert!(!b.full());
        // Retiring keeps the consume cursor aligned so depth stays
        // correct as new outcomes arrive.
        b.commit_front();
        b.push(false);
        assert_eq!(b.depth(), 1);
        assert!(!b.full());
        b.push(false);
        assert!(b.full());
    }

    #[test]
    fn fq_preserves_push_order_within_a_tag() {
        let mut fq = FootnoteQueue::new(8);
        fq.push(3, Footnote::L1Prefetch(0xA));
        fq.push(3, Footnote::TlbHint(0xB));
        fq.push(3, Footnote::L1Prefetch(0xC));
        let mut out = Vec::new();
        fq.release_up_to(3, &mut out);
        assert_eq!(
            out,
            vec![
                Footnote::L1Prefetch(0xA),
                Footnote::TlbHint(0xB),
                Footnote::L1Prefetch(0xC),
            ]
        );
        assert_eq!(fq.pushed.get(), 3);
        assert_eq!(fq.dropped.get(), 0);
    }

    #[test]
    fn fq_reboot_flush_drops_pending_hints() {
        let mut fq = FootnoteQueue::new(4);
        fq.push(1, Footnote::L1Prefetch(0x100));
        fq.push(
            2,
            Footnote::Value {
                tag: 2,
                offset: 1,
                pc: 0x40,
                value: 7,
            },
        );
        assert_eq!(fq.len(), 2);
        fq.clear();
        assert!(fq.is_empty());
        let mut out = Vec::new();
        fq.release_up_to(u64::MAX, &mut out);
        assert!(out.is_empty(), "flushed hints must never be released");
    }

    #[test]
    fn boq_direction_snapshot_restore() {
        let boq = Rc::new(RefCell::new(Boq::new(4)));
        let targets = Rc::new(RefCell::new(FxHashMap::default()));
        let mut dir = BoqDirection::new(Rc::clone(&boq), targets);
        boq.borrow_mut().push(true);
        boq.borrow_mut().push(false);
        let snap = dir.snapshot();
        dir.predict(0x40);
        dir.predict(0x44);
        dir.restore(snap, None);
        assert_eq!(dir.predict(0x40), Some(true));
    }
}
