#![warn(missing_docs)]
//! R3-DLA: the paper's contribution — a decoupled look-ahead system with
//! the *reduce* (T1 offload), *reuse* (value + control-flow reuse) and
//! *recycle* (skeleton cycling) optimizations, built on the `r3dla-cpu`
//! out-of-order core and `r3dla-mem` hierarchy.
//!
//! The moving parts, in paper order:
//!
//! * [`profile`] / [`Dataflow`] / [`generate_skeletons`] — the offline
//!   binary analysis of Appendix A: training-run profiling, reaching
//!   definitions, backward slicing, seed heuristics;
//! * [`Boq`] / [`FootnoteQueue`] / [`BoqDirection`] — the queues of
//!   §III-A and the BOQ-fed main-thread front end;
//! * [`OverlayMem`] — look-ahead speculation containment;
//! * [`T1`] — the strided-prefetch offload FSM of §III-C;
//! * [`Sif`] / [`VrSource`] — value reuse of §III-D1;
//! * [`ActiveSkeleton`] / [`RecycleController`] — skeleton recycling of
//!   §III-E;
//! * [`DlaSystem`] — the assembled two-core system; [`SingleCoreSim`] —
//!   the conventional baseline;
//! * [`Kernel`] / [`Cluster`] — the deterministic discrete-event
//!   scheduler the run loops pump, and the multi-tenant driver hosting N
//!   systems (shared LLC/DRAM) under one global clock;
//! * [`ilp_limit`] — the Fig 1 implicit-parallelism limit study.
//!
//! # Examples
//!
//! ```
//! use r3dla_core::{DlaConfig, DlaSystem, SkeletonOptions};
//! use r3dla_workloads::{by_name, Scale};
//!
//! let wl = by_name("libq_like").unwrap().build(Scale::Tiny);
//! let mut sys = DlaSystem::build(&wl, DlaConfig::r3(), SkeletonOptions::default()).unwrap();
//! let report = sys.measure(5_000, 20_000);
//! assert!(report.mt_ipc > 0.0);
//! ```

mod dataflow;
pub mod guard;
mod kernel;
mod limit;
mod overlay;
mod profile;
mod queues;
mod recycle;
mod skeleton;
mod static_tune;
mod system;
mod t1;
mod tunables;
mod value_reuse;

pub use dataflow::{BitSet, Dataflow};
pub use guard::{CellGuard, Interrupt};
pub use kernel::{
    event_kernel_default, ActorId, Cluster, EventQueue, Kernel, KernelActor, KernelStats,
};
pub use limit::{ilp_limit, LimitModel, LimitResult};
pub use overlay::OverlayMem;
pub use profile::{dynamic_length, profile, profile_functional, profile_timing, ProfileData};
pub use queues::{Boq, BoqDirection, BoqEntry, Footnote, FootnoteQueue};
pub use recycle::{ActiveSkeleton, RecycleController, RecycleMode};
pub use skeleton::{generate_skeletons, Skeleton, SkeletonOptions, SkeletonSet};
pub use static_tune::{build_static_tuned, static_recycle_mode, static_tune};
pub use system::{
    measure_window, BuildError, DlaConfig, DlaSystem, MeasureTarget, SingleCoreSim, SysSnapshot,
    WindowReport,
};
pub use t1::T1;
pub use value_reuse::{Sif, VrSource};
