//! Skeleton generation (paper Appendix A + §III-E1): seeds → backward
//! slice → mask bits, with the five seed-vector options the recycle
//! optimization combines into multiple skeleton versions.

use std::collections::HashMap;

use r3dla_isa::Program;

use crate::dataflow::Dataflow;
use crate::profile::ProfileData;

/// Thresholds and toggles for skeleton construction.
#[derive(Debug, Clone, PartialEq)]
pub struct SkeletonOptions {
    /// A memory instruction becomes a prefetch seed when its L1 miss rate
    /// exceeds this (paper: 1%).
    pub l1_seed_rate: f64,
    /// …or its L2 miss rate exceeds this (paper: 0.1%).
    pub l2_seed_rate: f64,
    /// Store→load dependences further apart than this many static
    /// instructions are ignored (paper: 1000).
    pub max_mem_dep_distance: usize,
    /// Stride-consistency ratio above which an in-loop memory instruction
    /// is offloaded to T1 (and removed from the skeleton).
    pub t1_stride_ratio: f64,
    /// Minimum dynamic instances before T1 offload is considered.
    pub t1_min_instances: u64,
    /// Dispatch-to-execute latency above which an instruction becomes a
    /// value-reuse target (paper: 20 cycles).
    pub vr_latency: f64,
    /// Minimum static dependents for a value-reuse target (paper: >1).
    pub vr_min_dependents: usize,
    /// Branch bias above which a branch is converted to unconditional in
    /// the skeleton.
    pub bias_threshold: f64,
    /// Minimum dynamic instances before bias conversion.
    pub bias_min_instances: u64,
}

impl Default for SkeletonOptions {
    fn default() -> Self {
        Self {
            l1_seed_rate: 0.01,
            l2_seed_rate: 0.001,
            max_mem_dep_distance: 1000,
            t1_stride_ratio: 0.9,
            t1_min_instances: 64,
            vr_latency: 20.0,
            vr_min_dependents: 2,
            bias_threshold: 0.995,
            bias_min_instances: 100,
        }
    }
}

/// One skeleton: the mask bits the look-ahead thread fetches, the S bits
/// marking T1-offloaded instructions in the main thread's binary, and the
/// bias overrides for converted branches.
#[derive(Debug, Clone)]
pub struct Skeleton {
    /// Human-readable version name.
    pub name: String,
    /// `mask[i]` — instruction `i` is on the skeleton (kept by LT).
    pub mask: Vec<bool>,
    /// `sbits[i]` — instruction `i` is T1-offloaded (marked in MT).
    pub sbits: Vec<bool>,
    /// `prefetch_only[i]` — instruction `i` is a masked load whose result
    /// no skeleton instruction consumes: LT executes it as a non-blocking
    /// prefetch payload (paper §III-A).
    pub prefetch_only: Vec<bool>,
    /// Conditional branches forced to a fixed direction in LT,
    /// keyed by PC.
    pub bias_override: HashMap<u64, bool>,
}

impl Skeleton {
    /// Fraction of static instructions on the skeleton.
    pub fn density(&self) -> f64 {
        if self.mask.is_empty() {
            return 0.0;
        }
        self.mask.iter().filter(|&&k| k).count() as f64 / self.mask.len() as f64
    }

    /// Dynamic skeleton weight: the fraction of *executed* instructions
    /// that are on the skeleton, under the given profile.
    pub fn dynamic_weight(&self, profile: &ProfileData) -> f64 {
        let total: u64 = profile.exec_count.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let kept: u64 = profile
            .exec_count
            .iter()
            .enumerate()
            .filter(|(i, _)| self.mask[*i])
            .map(|(_, &c)| c)
            .sum();
        kept as f64 / total as f64
    }
}

/// The generated skeleton versions used by the recycle controller
/// (paper Fig 6: multiple seed-vector combinations → multiple skeletons).
#[derive(Debug, Clone)]
pub struct SkeletonSet {
    /// All versions; index 0 is the default (the baseline-DLA skeleton).
    pub versions: Vec<Skeleton>,
}

impl SkeletonSet {
    /// Number of versions.
    pub fn len(&self) -> usize {
        self.versions.len()
    }

    /// Whether the set is empty (never true for generated sets).
    pub fn is_empty(&self) -> bool {
        self.versions.is_empty()
    }
}

/// Seed classification shared by the generator.
struct Seeds {
    control: Vec<usize>,
    l1_targets: Vec<usize>,
    l2_targets: Vec<usize>,
    t1_targets: Vec<usize>,
    vr_targets: Vec<usize>,
    biased_branches: Vec<usize>,
}

fn classify(prog: &Program, df: &Dataflow, profile: &ProfileData, opt: &SkeletonOptions) -> Seeds {
    let insts = prog.insts();
    let mut s = Seeds {
        control: Vec::new(),
        l1_targets: Vec::new(),
        l2_targets: Vec::new(),
        t1_targets: Vec::new(),
        vr_targets: Vec::new(),
        biased_branches: Vec::new(),
    };
    for (i, inst) in insts.iter().enumerate() {
        if inst.is_branch() {
            s.control.push(i);
            if inst.is_cond_branch()
                && profile.exec_count[i] >= opt.bias_min_instances
                && profile.bias(i) >= opt.bias_threshold
            {
                // Never force-take a backward branch: the look-ahead
                // thread would spin in the loop forever and trigger a
                // reboot storm at every loop exit. Forward conversions
                // and forced-not-taken back edges are safe (a wrong
                // outcome is caught by the BOQ and rebooted).
                let backward = (inst.imm as u64) < prog.index_to_pc(i);
                if !(profile.biased_taken(i) && backward) {
                    s.biased_branches.push(i);
                }
            }
        }
        if inst.is_mem() {
            let is_t1 = inst.is_load()
                && profile.mem_instances[i] >= opt.t1_min_instances
                && profile.stride_ratio(i) >= opt.t1_stride_ratio
                && profile.in_loop[i];
            if is_t1 {
                s.t1_targets.push(i);
            }
            if profile.l2_miss_rate(i) > opt.l2_seed_rate {
                s.l2_targets.push(i);
            } else if profile.l1_miss_rate(i) > opt.l1_seed_rate {
                s.l1_targets.push(i);
            }
        }
        if profile.avg_d2e[i] >= opt.vr_latency && df.dependents(i) >= opt.vr_min_dependents {
            s.vr_targets.push(i);
        }
    }
    s
}

#[allow(clippy::too_many_arguments)] // one flag per §III-E1 seed-vector dimension
fn build_one(
    name: &str,
    prog: &Program,
    df: &Dataflow,
    profile: &ProfileData,
    opt: &SkeletonOptions,
    seeds: &Seeds,
    include_l1: bool,
    include_vr: bool,
    t1_offload: bool,
    t1_add_back: bool,
    bias_convert: bool,
) -> Skeleton {
    let n = prog.len();
    let t1_set: std::collections::HashSet<usize> = if t1_offload {
        seeds.t1_targets.iter().copied().collect()
    } else {
        Default::default()
    };
    let bias_set: std::collections::HashSet<usize> = if bias_convert {
        seeds.biased_branches.iter().copied().collect()
    } else {
        Default::default()
    };
    // ---- Phase 1: full-value slice -----------------------------------
    // Control instructions (minus bias-converted ones) and value-reuse
    // targets need their *results* correct, so the closure follows every
    // register producer plus profiled memory dependences.
    let mut included = crate::dataflow::BitSet::new(n);
    let mut queue: Vec<usize> = Vec::new();
    for &c in &seeds.control {
        if !bias_set.contains(&c) && included.insert(c) {
            queue.push(c);
        }
    }
    if include_vr {
        for &v in &seeds.vr_targets {
            if !t1_set.contains(&v) && included.insert(v) {
                queue.push(v);
            }
        }
    }
    fn closure(
        included: &mut crate::dataflow::BitSet,
        queue: &mut Vec<usize>,
        prog: &Program,
        df: &Dataflow,
        profile: &ProfileData,
        max_dist: usize,
    ) {
        while let Some(i) = queue.pop() {
            for &p in df.producers(i) {
                if included.insert(p) {
                    queue.push(p);
                }
            }
            if prog.insts()[i].is_load() {
                if let Some(stores) = profile.mem_deps.get(&i) {
                    for &s in stores {
                        if s.abs_diff(i) <= max_dist && included.insert(s) {
                            queue.push(s);
                        }
                    }
                }
            }
        }
    }
    closure(
        &mut included,
        &mut queue,
        prog,
        df,
        profile,
        opt.max_mem_dep_distance,
    );
    // ---- Phase 2: prefetch payloads -----------------------------------
    // Missing memory instructions not already needed for their values are
    // included as prefetch payloads: only their *address* chains join the
    // skeleton and LT never stalls on their data (paper §III-A).
    let mut prefetch_only = vec![false; n];
    let mut prefetch_seeds: Vec<usize> = Vec::new();
    // The *reduce* optimization (paper §III-B): loads offloaded to the T1
    // FSM leave the skeleton entirely — T1 regenerates their strided
    // address streams at MT commit, so keeping their payloads (and the
    // address chains feeding them) in LT would be redundant work. The
    // `t1back` recycle version sets `t1_add_back` to restore the payloads
    // for loops where T1's shallower commit-time prefetch loses to deep
    // look-ahead prefetch. Loads whose *values* feed the control slice
    // were already included in phase 1 and are never removed.
    let drop_for_t1 = |m: usize| t1_set.contains(&m) && !t1_add_back;
    for &m in &seeds.l2_targets {
        if !drop_for_t1(m) {
            prefetch_seeds.push(m);
        }
    }
    if include_l1 {
        for &m in &seeds.l1_targets {
            if !drop_for_t1(m) {
                prefetch_seeds.push(m);
            }
        }
    }
    for m in prefetch_seeds {
        if included.contains(m) {
            continue; // its value is already live in the skeleton
        }
        included.insert(m);
        prefetch_only[m] = true;
        for &p in df.addr_producers(m) {
            if included.insert(p) {
                queue.push(p);
            }
        }
        closure(
            &mut included,
            &mut queue,
            prog,
            df,
            profile,
            opt.max_mem_dep_distance,
        );
    }
    let mut mask = vec![false; n];
    for i in included.iter() {
        mask[i] = true;
    }
    // All control instructions stay on the skeleton even when their
    // condition chain was dropped (bias-converted branches still execute
    // in LT — at a forced direction — to keep the BOQ aligned).
    for &c in &seeds.control {
        mask[c] = true;
    }
    // Halt must be on the skeleton so LT terminates.
    for (i, inst) in prog.insts().iter().enumerate() {
        if inst.op == r3dla_isa::Op::Halt {
            mask[i] = true;
        }
    }
    let mut sbits = vec![false; n];
    if t1_offload {
        for &t in &seeds.t1_targets {
            sbits[t] = true;
        }
    }
    let mut bias_override = HashMap::new();
    if bias_convert {
        for &b in &seeds.biased_branches {
            bias_override.insert(prog.index_to_pc(b), profile.biased_taken(b));
        }
    }
    Skeleton {
        name: name.to_string(),
        mask,
        sbits,
        prefetch_only,
        bias_override,
    }
}

/// Generates the skeleton set.
///
/// `t1_enabled` selects whether strided loads are offloaded to the T1 FSM
/// (R3-DLA) or kept in the skeleton (baseline DLA).
///
/// Version list (paper §III-E1 seed-vector combinations, six versions):
///
/// | # | name       | L1 targets | VR targets | T1 add-back | bias conv. |
/// |---|------------|-----------|------------|-------------|------------|
/// | 0 | `default`  | yes       | no         | no          | no         |
/// | 1 | `lean`     | no        | no         | no          | no         |
/// | 2 | `vr`       | yes       | yes        | no          | no         |
/// | 3 | `t1back`   | yes       | no         | yes         | no         |
/// | 4 | `biased`   | yes       | no         | no          | yes        |
/// | 5 | `max`      | yes       | yes        | no          | yes        |
pub fn generate_skeletons(
    prog: &Program,
    df: &Dataflow,
    profile: &ProfileData,
    opt: &SkeletonOptions,
    t1_enabled: bool,
) -> SkeletonSet {
    let seeds = classify(prog, df, profile, opt);
    let mk = |name, l1, vr, back, bias| {
        build_one(
            name, prog, df, profile, opt, &seeds, l1, vr, t1_enabled, back, bias,
        )
    };
    SkeletonSet {
        versions: vec![
            mk("default", true, false, false, false),
            mk("lean", false, false, false, false),
            mk("vr", true, true, false, false),
            mk("t1back", true, false, true, false),
            mk("biased", true, false, false, true),
            mk("max", true, true, false, true),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::profile_functional;
    use r3dla_isa::{Asm, Reg};

    /// A loop with: a strided load, a pointer-chase load, an unrelated
    /// "compute only" chain, and a biased branch.
    fn mixed_program() -> Program {
        let mut rng = r3dla_stats::Rng::new(1);
        let n = 8192usize;
        let mut a = Asm::new();
        let arr = a.data().alloc_words(n);
        let chase = a.data().alloc_words(n);
        let mut perm: Vec<u64> = (0..n as u64).collect();
        for i in (1..n).rev() {
            let j = rng.range_usize(0, i);
            perm.swap(i, j);
        }
        for (i, &p) in perm.iter().enumerate() {
            a.data().put_word(chase + (i as u64) * 8, chase + p * 8);
        }
        let (i, lim, b, v, cur, dead) = (
            Reg::int(10),
            Reg::int(11),
            Reg::int(12),
            Reg::int(13),
            Reg::int(14),
            Reg::int(15),
        );
        a.li(i, 0); // 0
        a.li(lim, n as i64); // 1
        a.li(b, arr as i64); // 2
        a.li(cur, chase as i64); // 3
        a.label("loop");
        a.slli(v, i, 3); // 4
        a.add(v, v, b); // 5
        a.ld(Reg::int(16), v, 0); // 6: strided load
        a.ld(cur, cur, 0); // 7: pointer chase
        a.addi(dead, dead, 5); // 8: dead compute
        a.mul(dead, dead, dead); // 9: dead compute

        // A forward guard branch that is never taken (rare-error check):
        // the canonical bias-conversion target.
        a.blt(i, Reg::ZERO, "guard"); // 10: biased forward branch
        a.label("guard");
        a.addi(i, i, 1); // 11
        a.blt(i, lim, "loop"); // 12: biased backward branch
        a.halt(); // 13
        a.finish().unwrap()
    }

    fn profile_of(p: &Program) -> (Dataflow, ProfileData) {
        let df = Dataflow::analyze(p);
        let prof = profile_functional(p, 500_000);
        (df, prof)
    }

    #[test]
    fn default_skeleton_keeps_chase_drops_dead_code() {
        let p = mixed_program();
        let (df, prof) = profile_of(&p);
        let set = generate_skeletons(&p, &df, &prof, &SkeletonOptions::default(), false);
        let sk = &set.versions[0];
        assert!(sk.mask[7], "pointer-chase load on skeleton");
        assert!(sk.mask[12], "loop branch on skeleton");
        assert!(sk.mask[11], "branch chain (addi i) on skeleton");
        assert!(!sk.mask[8] && !sk.mask[9], "dead compute off skeleton");
        assert!(sk.mask[13], "halt stays on skeleton");
    }

    #[test]
    fn t1_offload_marks_strided_load() {
        let p = mixed_program();
        let (df, prof) = profile_of(&p);
        let without = generate_skeletons(&p, &df, &prof, &SkeletonOptions::default(), false);
        let with = generate_skeletons(&p, &df, &prof, &SkeletonOptions::default(), true);
        // The strided load (6) carries an S bit and is *removed* from the
        // skeleton — T1 regenerates its address stream at MT commit, so
        // LT does not spend fetch/commit bandwidth on it (the paper's
        // "reduce" optimization).
        assert!(with.versions[0].sbits[6], "strided load S-bit set");
        assert!(
            !with.versions[0].mask[6],
            "offloaded payload leaves the skeleton"
        );
        assert!(
            without.versions[0].mask[6],
            "baseline keeps the strided load"
        );
        assert!(
            without.versions[0].prefetch_only[6],
            "baseline carries it as a non-blocking payload"
        );
        // The `t1back` recycle version restores the payload for loops
        // where deep look-ahead prefetch beats T1's shallow stream.
        assert!(with.versions[3].mask[6], "t1back restores the payload");
        assert!(
            with.versions[3].prefetch_only[6],
            "restored payload is still non-blocking"
        );
        assert!(!with.versions[0].sbits[7], "pointer chase not T1-eligible");
        assert!(!without.versions[0].sbits[6], "no S bits without T1");
    }

    #[test]
    fn skeleton_shrinks_lt_workload() {
        let p = mixed_program();
        let (df, prof) = profile_of(&p);
        let set = generate_skeletons(&p, &df, &prof, &SkeletonOptions::default(), true);
        let w = set.versions[0].dynamic_weight(&prof);
        assert!(w < 0.9, "skeleton should drop work, weight={w}");
        assert!(w > 0.2, "skeleton kept too little, weight={w}");
        // Lean ⊆ default ⊆ vr (bias conversion in `max` can *shrink* the
        // skeleton by dropping branch-condition chains, so it is not
        // comparable).
        let lean = set.versions[1].dynamic_weight(&prof);
        let vr = set.versions[2].dynamic_weight(&prof);
        assert!(lean <= w + 1e-12);
        assert!(w <= vr + 1e-12);
    }

    #[test]
    fn biased_branch_converted_with_override() {
        let p = mixed_program();
        let (df, prof) = profile_of(&p);
        let set = generate_skeletons(&p, &df, &prof, &SkeletonOptions::default(), false);
        let biased = &set.versions[4];
        // The forward guard branch converts (forced not-taken).
        let guard_pc = p.index_to_pc(10);
        assert_eq!(biased.bias_override.get(&guard_pc), Some(&false));
        // The backward loop branch must NOT be force-taken (it would trap
        // the look-ahead thread in the loop).
        let loop_pc = p.index_to_pc(12);
        assert_eq!(biased.bias_override.get(&loop_pc), None);
        // Converted branches stay on the skeleton for BOQ alignment.
        assert!(biased.mask[10]);
        // The default version has no overrides.
        assert!(set.versions[0].bias_override.is_empty());
    }

    #[test]
    fn density_reported() {
        let p = mixed_program();
        let (df, prof) = profile_of(&p);
        let set = generate_skeletons(&p, &df, &prof, &SkeletonOptions::default(), false);
        let d = set.versions[0].density();
        assert!(d > 0.0 && d <= 1.0);
    }
}
