//! Skeleton re-cycling (paper §III-E): the active-skeleton holder (the
//! mask the LT front end consults), the Loop-Config Table, and the
//! controller that searches skeleton versions per loop.

use std::collections::HashMap;

use r3dla_cpu::{BranchOverride, FetchFilter};
use r3dla_isa::Program;
use r3dla_stats::Counter;

use crate::skeleton::SkeletonSet;

/// The currently selected skeleton, shared between the LT fetch filter,
/// the LT branch-override hook and the recycle controller.
#[derive(Debug)]
pub struct ActiveSkeleton {
    set: SkeletonSet,
    active: usize,
    code_base: u64,
    n: usize,
    /// Committed-instruction-weighted usage per version (Fig 15 data).
    pub usage: Vec<u64>,
}

impl ActiveSkeleton {
    /// Wraps a skeleton set; version 0 starts active.
    pub fn new(set: SkeletonSet, prog: &Program) -> Self {
        let n = prog.len();
        let versions = set.len();
        Self {
            set,
            active: 0,
            code_base: prog.code_base(),
            n,
            usage: vec![0; versions],
        }
    }

    /// Index of the active version.
    pub fn active(&self) -> usize {
        self.active
    }

    /// Switches the active version.
    ///
    /// # Panics
    ///
    /// Panics if `version` is out of range.
    pub fn switch_to(&mut self, version: usize) {
        assert!(version < self.set.len(), "skeleton version out of range");
        self.active = version;
    }

    /// Number of versions available.
    pub fn versions(&self) -> usize {
        self.set.len()
    }

    /// The skeleton set.
    pub fn set(&self) -> &SkeletonSet {
        &self.set
    }

    /// Records one committed MT instruction against the active version.
    pub fn tick_usage(&mut self) {
        self.usage[self.active] += 1;
    }

    #[inline]
    fn index_of(&self, pc: u64) -> Option<usize> {
        if pc < self.code_base {
            return None;
        }
        let idx = ((pc - self.code_base) / 4) as usize;
        (idx < self.n).then_some(idx)
    }
}

impl FetchFilter for ActiveSkeleton {
    fn keep(&mut self, pc: u64) -> bool {
        match self.index_of(pc) {
            Some(i) => self.set.versions[self.active].mask[i],
            None => true,
        }
    }

    fn prefetch_only(&mut self, pc: u64) -> bool {
        match self.index_of(pc) {
            Some(i) => self.set.versions[self.active].prefetch_only[i],
            None => false,
        }
    }
}

impl BranchOverride for ActiveSkeleton {
    fn force(&self, pc: u64) -> Option<bool> {
        self.set.versions[self.active]
            .bias_override
            .get(&pc)
            .copied()
    }
}

/// Recycle-controller operating mode.
#[derive(Debug, Clone, PartialEq)]
pub enum RecycleMode {
    /// Always use version 0 (no recycling).
    Off,
    /// On-line per-loop search (paper Fig 7).
    Dynamic,
    /// Off-line assignment from training-run tuning: loop PC → version.
    Static(HashMap<u64, usize>),
}

#[derive(Debug, Clone, Copy)]
struct LctEntry {
    loop_pc: u64,
    version: usize,
    stamp: u64,
    /// The default (version-0) IPC measured when this choice was made —
    /// the monitor's safety reference (the Fig 7 "update if not equal"
    /// path reverts to the default when the choice stops paying off).
    default_ipc: f64,
}

#[derive(Debug, Clone, Copy)]
struct LoopSearch {
    loop_pc: u64,
    /// Version currently under test; `versions()` means the final
    /// confirmation re-measurement of version 0 (a warm rerun that
    /// removes the cold-start bias of testing version 0 first).
    testing: usize,
    iters_this_version: u32,
    insts_at_start: u64,
    cycles_at_start: u64,
    /// Whether the settling period after the switch has elapsed — the
    /// look-ahead pipeline (BOQ depth) must drain before MT's IPC
    /// reflects the new skeleton.
    settled: bool,
    best: usize,
    best_ipc: f64,
    /// Measured IPC of the default version (hysteresis reference).
    default_ipc: f64,
}

#[derive(Debug, Clone, Copy)]
struct LoopMonitor {
    loop_pc: u64,
    iters: u32,
    insts_at_start: u64,
    cycles_at_start: u64,
    /// The default version's IPC measured during the search.
    default_ipc: f64,
}

/// The recycle controller: observes the main thread's committed loop
/// branches and steers the LT's active skeleton (paper Fig 7: Loop
/// Register + Loop-Config Table).
#[derive(Debug)]
pub struct RecycleController {
    mode: RecycleMode,
    lct: Vec<LctEntry>,
    lct_capacity: usize,
    search: Option<LoopSearch>,
    monitor: Option<LoopMonitor>,
    current_loop: Option<u64>,
    /// Target of the previous committed backward branch — loop
    /// identification requires two *consecutive* instances of the same
    /// loop branch (paper §III-E2, Fig 7).
    last_backward_target: Option<u64>,
    committed: u64,
    /// Iterations each version is measured for during a search.
    pub iters_per_version: u32,
    /// Minimum committed instructions per measurement window (paper:
    /// units of at least ~10k instructions).
    pub min_insts_per_version: u64,
    /// Committed instructions to wait after a switch before measuring.
    pub settle_insts: u64,
    /// Completed searches.
    pub searches: Counter,
    /// Skeleton switches performed.
    pub switches: Counter,
    /// LCT hits.
    pub lct_hits: Counter,
    /// Reboots observed while a non-default version was active (storm
    /// detection).
    storm_count: u32,
    /// Versions abandoned by the reboot-storm guard.
    pub storm_demotions: Counter,
}

impl RecycleController {
    /// Creates a controller (paper Table I: 16-entry LCT).
    pub fn new(mode: RecycleMode) -> Self {
        Self {
            mode,
            lct: Vec::new(),
            lct_capacity: 16,
            search: None,
            monitor: None,
            current_loop: None,
            last_backward_target: None,
            committed: 0,
            iters_per_version: 4,
            min_insts_per_version: 3_000,
            settle_insts: 1_000,
            searches: Counter::new(),
            switches: Counter::new(),
            lct_hits: Counter::new(),
            storm_count: 0,
            storm_demotions: Counter::new(),
        }
    }

    /// Reboot feedback from the system: a skeleton version that keeps
    /// veering off the control flow (e.g. a bias conversion whose bias
    /// shifted after profiling) is demoted back to the default and the
    /// LCT entry is pinned to version 0 (the Fig 7 "update if not equal"
    /// path).
    pub fn on_reboot(&mut self, active: &mut ActiveSkeleton) {
        if active.active() == 0 {
            self.storm_count = 0;
            return;
        }
        self.storm_count += 1;
        if self.storm_count >= 3 {
            self.storm_count = 0;
            active.switch_to(0);
            self.switches.inc();
            self.storm_demotions.inc();
            self.search = None;
            self.monitor = None;
            if let Some(lp) = self.current_loop {
                self.lct_insert(lp, 0, 0.0);
            }
        }
    }

    /// The operating mode.
    pub fn mode(&self) -> &RecycleMode {
        &self.mode
    }

    fn lct_lookup(&mut self, loop_pc: u64) -> Option<(usize, f64)> {
        let stamp = self.committed;
        for e in &mut self.lct {
            if e.loop_pc == loop_pc {
                e.stamp = stamp;
                return Some((e.version, e.default_ipc));
            }
        }
        None
    }

    fn lct_insert(&mut self, loop_pc: u64, version: usize, default_ipc: f64) {
        let stamp = self.committed;
        if let Some(e) = self.lct.iter_mut().find(|e| e.loop_pc == loop_pc) {
            e.version = version;
            e.stamp = stamp;
            e.default_ipc = default_ipc;
            return;
        }
        if self.lct.len() < self.lct_capacity {
            self.lct.push(LctEntry {
                loop_pc,
                version,
                stamp,
                default_ipc,
            });
            return;
        }
        let victim = self
            .lct
            .iter_mut()
            .min_by_key(|e| e.stamp)
            .expect("nonempty LCT");
        *victim = LctEntry {
            loop_pc,
            version,
            stamp,
            default_ipc,
        };
    }

    /// Called for every committed MT instruction.
    pub fn on_commit(&mut self, active: &mut ActiveSkeleton) {
        self.committed += 1;
        active.tick_usage();
    }

    /// Called when MT commits a backward-taken conditional branch with
    /// target `loop_pc` at `cycle`. Only a branch with two *consecutive*
    /// instances (no interleaving loop branch) is treated as "the current
    /// loop" — this filters outer-loop back-edges in nested loops (paper
    /// §III-E2).
    pub fn on_loop_branch(&mut self, loop_pc: u64, cycle: u64, active: &mut ActiveSkeleton) {
        let consecutive = self.last_backward_target == Some(loop_pc);
        self.last_backward_target = Some(loop_pc);
        if !consecutive {
            return;
        }
        match &self.mode {
            RecycleMode::Off => {}
            RecycleMode::Static(map) => {
                if self.current_loop != Some(loop_pc) {
                    self.current_loop = Some(loop_pc);
                    let version = map.get(&loop_pc).copied().unwrap_or(0);
                    if version != active.active() {
                        active.switch_to(version);
                        self.switches.inc();
                    }
                }
            }
            RecycleMode::Dynamic => self.dynamic_step(loop_pc, cycle, active),
        }
    }

    fn dynamic_step(&mut self, loop_pc: u64, cycle: u64, active: &mut ActiveSkeleton) {
        if self.current_loop != Some(loop_pc) {
            // New loop: abandon any search/monitor in progress.
            self.current_loop = Some(loop_pc);
            self.search = None;
            self.monitor = None;
            if let Some((version, ipc)) = self.lct_lookup(loop_pc) {
                self.lct_hits.inc();
                if version != active.active() {
                    active.switch_to(version);
                    self.switches.inc();
                }
                if active.active() != 0 {
                    self.monitor = Some(LoopMonitor {
                        loop_pc,
                        iters: 0,
                        insts_at_start: self.committed,
                        cycles_at_start: cycle,
                        default_ipc: ipc,
                    });
                }
            } else {
                // Begin a search at version 0.
                if active.active() != 0 {
                    active.switch_to(0);
                    self.switches.inc();
                }
                self.search = Some(LoopSearch {
                    loop_pc,
                    testing: 0,
                    iters_this_version: 0,
                    insts_at_start: self.committed,
                    cycles_at_start: cycle,
                    settled: false,
                    best: 0,
                    best_ipc: 0.0,
                    default_ipc: 0.0,
                });
            }
            return;
        }
        if let Some(s) = self.search {
            self.search_step(s, loop_pc, cycle, active);
            return;
        }
        if let Some(m) = self.monitor {
            self.monitor_step(m, loop_pc, cycle, active);
        }
    }

    fn search_step(
        &mut self,
        mut s: LoopSearch,
        loop_pc: u64,
        cycle: u64,
        active: &mut ActiveSkeleton,
    ) {
        debug_assert_eq!(s.loop_pc, loop_pc);
        if !s.settled {
            // Wait for the look-ahead pipeline to reflect the version
            // under test before starting the measurement window.
            if self.committed - s.insts_at_start >= self.settle_insts {
                s.settled = true;
                s.iters_this_version = 0;
                s.insts_at_start = self.committed;
                s.cycles_at_start = cycle;
            }
            self.search = Some(s);
            return;
        }
        s.iters_this_version += 1;
        let insts = self.committed - s.insts_at_start;
        if s.iters_this_version >= self.iters_per_version && insts >= self.min_insts_per_version {
            let cycles = (cycle - s.cycles_at_start).max(1);
            let ipc = insts as f64 / cycles as f64;
            let confirming = s.testing >= active.versions();
            if s.testing == 0 || confirming {
                // Version 0's measurement; the confirmation rerun (warm)
                // overwrites the cold first window.
                s.default_ipc = ipc;
            }
            if !confirming && ipc > s.best_ipc {
                s.best_ipc = ipc;
                s.best = s.testing;
            }
            if s.testing + 1 < active.versions() {
                // Move to the next version.
                s.testing += 1;
                s.iters_this_version = 0;
                s.insts_at_start = self.committed;
                s.cycles_at_start = cycle;
                s.settled = false;
                active.switch_to(s.testing);
                self.switches.inc();
                self.search = Some(s);
            } else if !confirming && s.best != 0 {
                // Re-measure version 0 warm before crowning a challenger.
                s.testing = active.versions();
                s.iters_this_version = 0;
                s.insts_at_start = self.committed;
                s.cycles_at_start = cycle;
                s.settled = false;
                active.switch_to(0);
                self.switches.inc();
                self.search = Some(s);
            } else {
                // Search complete. Hysteresis: a challenger must beat the
                // (warm) default by 5% to displace it — one noisy window
                // must not lock in a regression.
                let winner = if s.best != 0 && s.best_ipc < 1.05 * s.default_ipc {
                    0
                } else {
                    s.best
                };
                active.switch_to(winner);
                self.switches.inc();
                self.lct_insert(loop_pc, winner, s.default_ipc);
                self.searches.inc();
                self.search = None;
                if winner != 0 {
                    self.monitor = Some(LoopMonitor {
                        loop_pc,
                        iters: 0,
                        insts_at_start: self.committed,
                        cycles_at_start: cycle,
                        default_ipc: s.default_ipc,
                    });
                }
            }
        } else {
            self.search = Some(s);
        }
    }

    fn monitor_step(
        &mut self,
        mut m: LoopMonitor,
        loop_pc: u64,
        cycle: u64,
        active: &mut ActiveSkeleton,
    ) {
        debug_assert_eq!(m.loop_pc, loop_pc);
        m.iters += 1;
        let insts = self.committed - m.insts_at_start;
        if m.iters >= 2 * self.iters_per_version && insts >= 2 * self.min_insts_per_version {
            let cycles = (cycle - m.cycles_at_start).max(1);
            let ipc = insts as f64 / cycles as f64;
            if m.default_ipc > 0.0 && ipc < 0.9 * m.default_ipc && active.active() != 0 {
                // The chosen version runs worse than the default did:
                // revert and pin the default (Fig 7 "update if not
                // equal"). Pinning — rather than endlessly re-searching —
                // bounds the cost of a mistaken choice.
                active.switch_to(0);
                self.switches.inc();
                self.lct_insert(loop_pc, 0, m.default_ipc);
                self.monitor = None;
                return;
            }
            m.iters = 0;
            m.insts_at_start = self.committed;
            m.cycles_at_start = cycle;
        }
        self.monitor = Some(m);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::skeleton::Skeleton;
    use r3dla_isa::{Asm, Reg};

    fn tiny_program() -> Program {
        let mut a = Asm::new();
        a.label("top");
        a.addi(Reg::int(10), Reg::int(10), 1);
        a.beq(Reg::int(10), Reg::ZERO, "top");
        a.halt();
        a.finish().unwrap()
    }

    fn three_version_set(prog: &Program) -> SkeletonSet {
        let n = prog.len();
        let mk = |name: &str, every: usize| Skeleton {
            name: name.into(),
            mask: (0..n).map(|i| i % every == 0 || every == 1).collect(),
            sbits: vec![false; n],
            prefetch_only: vec![false; n],
            bias_override: HashMap::new(),
        };
        SkeletonSet {
            versions: vec![mk("all", 1), mk("half", 2), mk("third", 3)],
        }
    }

    #[test]
    fn active_skeleton_filters_by_version() {
        let p = tiny_program();
        let set = three_version_set(&p);
        let mut a = ActiveSkeleton::new(set, &p);
        let pc1 = p.index_to_pc(1);
        assert!(a.keep(pc1)); // version "all"
        a.switch_to(1); // "half": only even indices kept
        assert!(!a.keep(pc1));
        assert!(a.keep(p.index_to_pc(0)));
    }

    #[test]
    fn lct_hit_restores_previous_choice() {
        let p = tiny_program();
        let mut active = ActiveSkeleton::new(three_version_set(&p), &p);
        let mut rc = RecycleController::new(RecycleMode::Dynamic);
        rc.iters_per_version = 2;
        rc.min_insts_per_version = 1;
        rc.settle_insts = 0;
        // Loop A: search all 3 versions; make version 1 fastest by
        // feeding cycles (commit density controls measured IPC).
        let mut cycle = 0u64;
        let loop_a = 0x100;
        // Two consecutive instances identify the loop; the second call
        // begins the search. One extra call flips the settle latch.
        rc.on_loop_branch(loop_a, cycle, &mut active);
        rc.on_loop_branch(loop_a, cycle, &mut active);
        for v in 0..3 {
            rc.on_loop_branch(loop_a, cycle, &mut active); // settle tick
            for _ in 0..2 {
                // version 1 gets more commits per cycle
                let commits = if v == 1 { 40 } else { 10 };
                for _ in 0..commits {
                    rc.on_commit(&mut active);
                }
                cycle += 100;
                rc.on_loop_branch(loop_a, cycle, &mut active);
            }
        }
        // Confirmation phase: version 0 is re-measured warm.
        rc.on_loop_branch(loop_a, cycle, &mut active); // settle tick
        for _ in 0..2 {
            for _ in 0..10 {
                rc.on_commit(&mut active);
            }
            cycle += 100;
            rc.on_loop_branch(loop_a, cycle, &mut active);
        }
        assert_eq!(active.active(), 1, "fastest version selected");
        assert_eq!(rc.searches.get(), 1);
        // Visit another loop, then return: LCT hit restores version 1
        // without a new search (loop B starts a search; returning to A
        // hits).
        rc.on_loop_branch(0x900, cycle, &mut active);
        rc.on_loop_branch(0x900, cycle + 5, &mut active);
        rc.on_loop_branch(loop_a, cycle + 10, &mut active);
        rc.on_loop_branch(loop_a, cycle + 15, &mut active);
        assert_eq!(active.active(), 1);
        assert_eq!(rc.lct_hits.get(), 1);
    }

    #[test]
    fn static_mode_uses_precomputed_map() {
        let p = tiny_program();
        let mut active = ActiveSkeleton::new(three_version_set(&p), &p);
        let mut map = HashMap::new();
        map.insert(0x500u64, 2usize);
        let mut rc = RecycleController::new(RecycleMode::Static(map));
        rc.on_loop_branch(0x500, 10, &mut active);
        rc.on_loop_branch(0x500, 12, &mut active);
        assert_eq!(active.active(), 2);
        // Unknown loops fall back to the default skeleton.
        rc.on_loop_branch(0x700, 20, &mut active);
        rc.on_loop_branch(0x700, 22, &mut active);
        assert_eq!(active.active(), 0);
    }

    #[test]
    fn off_mode_never_switches() {
        let p = tiny_program();
        let mut active = ActiveSkeleton::new(three_version_set(&p), &p);
        let mut rc = RecycleController::new(RecycleMode::Off);
        for i in 0..100 {
            rc.on_loop_branch(0x100 + i * 8, i, &mut active);
        }
        assert_eq!(active.active(), 0);
        assert_eq!(rc.switches.get(), 0);
    }

    #[test]
    fn reboot_storm_demotes_to_default_and_pins_lct() {
        let p = tiny_program();
        let mut active = ActiveSkeleton::new(three_version_set(&p), &p);
        let mut rc = RecycleController::new(RecycleMode::Dynamic);
        // Enter a loop and force a non-default version as if a search had
        // chosen it.
        rc.on_loop_branch(0x100, 0, &mut active);
        rc.on_loop_branch(0x100, 1, &mut active);
        active.switch_to(2);
        // Two reboots: below the storm threshold, nothing happens.
        rc.on_reboot(&mut active);
        rc.on_reboot(&mut active);
        assert_eq!(active.active(), 2);
        assert_eq!(rc.storm_demotions.get(), 0);
        // Third consecutive reboot trips the guard.
        rc.on_reboot(&mut active);
        assert_eq!(active.active(), 0, "storm guard must demote to default");
        assert_eq!(rc.storm_demotions.get(), 1);
        // The LCT is pinned to version 0: revisiting the loop after going
        // elsewhere is a hit that keeps the default.
        rc.on_loop_branch(0x900, 10, &mut active);
        rc.on_loop_branch(0x900, 11, &mut active);
        rc.on_loop_branch(0x100, 20, &mut active);
        rc.on_loop_branch(0x100, 21, &mut active);
        assert_eq!(rc.lct_hits.get(), 1);
        assert_eq!(active.active(), 0);
    }

    #[test]
    fn reboots_on_default_version_reset_the_storm_counter() {
        let p = tiny_program();
        let mut active = ActiveSkeleton::new(three_version_set(&p), &p);
        let mut rc = RecycleController::new(RecycleMode::Dynamic);
        active.switch_to(1);
        rc.on_reboot(&mut active);
        rc.on_reboot(&mut active);
        // A reboot while the default is active clears the streak.
        active.switch_to(0);
        rc.on_reboot(&mut active);
        active.switch_to(1);
        rc.on_reboot(&mut active);
        rc.on_reboot(&mut active);
        assert_eq!(
            rc.storm_demotions.get(),
            0,
            "streak must restart after reset"
        );
        rc.on_reboot(&mut active);
        assert_eq!(rc.storm_demotions.get(), 1);
        assert_eq!(active.active(), 0);
    }

    #[test]
    fn monitor_reverts_when_chosen_version_underperforms() {
        let p = tiny_program();
        let mut active = ActiveSkeleton::new(three_version_set(&p), &p);
        let mut rc = RecycleController::new(RecycleMode::Dynamic);
        rc.iters_per_version = 2;
        rc.min_insts_per_version = 1;
        rc.settle_insts = 0;
        let mut cycle = 0u64;
        let lp = 0x200;
        // Search: make version 1 look fastest, as in
        // `lct_hit_restores_previous_choice`.
        rc.on_loop_branch(lp, cycle, &mut active);
        rc.on_loop_branch(lp, cycle, &mut active);
        for v in 0..3 {
            rc.on_loop_branch(lp, cycle, &mut active);
            for _ in 0..2 {
                let commits = if v == 1 { 40 } else { 10 };
                for _ in 0..commits {
                    rc.on_commit(&mut active);
                }
                cycle += 100;
                rc.on_loop_branch(lp, cycle, &mut active);
            }
        }
        rc.on_loop_branch(lp, cycle, &mut active);
        for _ in 0..2 {
            for _ in 0..10 {
                rc.on_commit(&mut active);
            }
            cycle += 100;
            rc.on_loop_branch(lp, cycle, &mut active);
        }
        assert_eq!(active.active(), 1, "search must crown version 1");
        let switches_after_search = rc.switches.get();
        // Monitor phase: version 1 now runs far below the default IPC the
        // search recorded — the controller must revert and pin version 0.
        for _ in 0..(2 * rc.iters_per_version + 1) {
            rc.on_commit(&mut active); // 1 commit per 100 cycles: slow
            cycle += 100;
            rc.on_loop_branch(lp, cycle, &mut active);
        }
        assert_eq!(active.active(), 0, "monitor must revert a regression");
        assert!(rc.switches.get() > switches_after_search);
        // Re-entry hits the pinned LCT entry and stays on the default.
        rc.on_loop_branch(0x900, cycle, &mut active);
        rc.on_loop_branch(0x900, cycle + 1, &mut active);
        rc.on_loop_branch(lp, cycle + 2, &mut active);
        rc.on_loop_branch(lp, cycle + 3, &mut active);
        assert_eq!(active.active(), 0);
    }

    #[test]
    fn lct_evicts_least_recently_stamped_entry() {
        let p = tiny_program();
        let _active = ActiveSkeleton::new(three_version_set(&p), &p);
        let mut rc = RecycleController::new(RecycleMode::Dynamic);
        // Fill the 16-entry LCT directly through the insert path.
        for i in 0..16u64 {
            rc.committed = i; // distinct stamps
            rc.lct_insert(0x1000 + i * 8, 1, 1.0);
        }
        // Touch the oldest so the second-oldest becomes the victim.
        rc.committed = 100;
        assert!(rc.lct_lookup(0x1000).is_some());
        rc.committed = 101;
        rc.lct_insert(0x9000, 2, 1.0);
        assert!(
            rc.lct_lookup(0x1000).is_some(),
            "recently used entry survives"
        );
        assert!(rc.lct_lookup(0x1008).is_none(), "LRU entry evicted");
        assert_eq!(rc.lct_lookup(0x9000).map(|(v, _)| v), Some(2));
    }

    #[test]
    fn usage_histogram_tracks_active_version() {
        let p = tiny_program();
        let mut active = ActiveSkeleton::new(three_version_set(&p), &p);
        let mut rc = RecycleController::new(RecycleMode::Off);
        for _ in 0..5 {
            rc.on_commit(&mut active);
        }
        active.switch_to(2);
        for _ in 0..3 {
            rc.on_commit(&mut active);
        }
        assert_eq!(active.usage, vec![5, 0, 3]);
    }
}
