//! Static dataflow analysis over the program binary: control-flow graph,
//! reaching definitions, and the backward slicing that turns seed
//! instructions into a skeleton (paper Appendix A).

use std::collections::HashMap;

use r3dla_isa::{Program, Reg, CODE_BASE, INST_BYTES};

/// A dense bitset over static instruction indices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// Creates an empty set over `len` elements.
    pub fn new(len: usize) -> Self {
        Self {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Inserts `i`; returns whether it was newly inserted.
    pub fn insert(&mut self, i: usize) -> bool {
        debug_assert!(i < self.len);
        let w = i / 64;
        let b = 1u64 << (i % 64);
        let was = self.words[w] & b != 0;
        self.words[w] |= b;
        !was
    }

    /// Membership test.
    pub fn contains(&self, i: usize) -> bool {
        if i >= self.len {
            return false;
        }
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// In-place union; returns whether anything changed.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let new = *a | *b;
            changed |= new != *a;
            *a = new;
        }
        changed
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterates over the set members.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.len).filter(move |&i| self.contains(i))
    }

    /// Number of elements the set ranges over.
    pub fn universe(&self) -> usize {
        self.len
    }
}

/// Per-instruction reaching definitions for each architectural register,
/// computed with the classic iterative dataflow over basic blocks.
#[derive(Debug)]
pub struct Dataflow {
    /// `producers[i]` = set of instruction indices whose definitions may
    /// reach instruction `i`'s register uses.
    producers: Vec<Vec<usize>>,
    /// For memory instructions: producers of the *address* operand only
    /// (`rs1`). Prefetch-payload seeds slice through these, not through
    /// the data operand (paper §III-A).
    addr_producers: Vec<Vec<usize>>,
    /// Static def-use fanout: how many instructions consume each
    /// instruction's definition.
    dependents: Vec<usize>,
    n: usize,
}

impl Dataflow {
    /// Analyzes a program.
    pub fn analyze(prog: &Program) -> Self {
        let insts = prog.insts();
        let n = insts.len();
        // --- Basic blocks -------------------------------------------------
        let mut leader = vec![false; n];
        if n > 0 {
            leader[0] = true;
        }
        for (i, inst) in insts.iter().enumerate() {
            if inst.is_branch() {
                if i + 1 < n {
                    leader[i + 1] = true;
                }
                if inst.has_static_target() {
                    let t = (inst.imm as u64).wrapping_sub(CODE_BASE) / INST_BYTES;
                    if (t as usize) < n {
                        leader[t as usize] = true;
                    }
                }
            }
        }
        let block_starts: Vec<usize> = (0..n).filter(|&i| leader[i]).collect();
        let nb = block_starts.len();
        let block_of = {
            let mut v = vec![0usize; n];
            let mut b = 0;
            for (i, bo) in v.iter_mut().enumerate() {
                if b + 1 < nb && block_starts[b + 1] == i {
                    b += 1;
                }
                *bo = b;
            }
            v
        };
        let block_end = |b: usize| {
            if b + 1 < nb {
                block_starts[b + 1]
            } else {
                n
            }
        };
        // Successors.
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); nb];
        for (b, succ) in succs.iter_mut().enumerate() {
            let last = block_end(b) - 1;
            let inst = &insts[last];
            let fallthrough = !matches!(
                inst.branch_kind(),
                Some(
                    r3dla_isa::BranchKind::Jump
                        | r3dla_isa::BranchKind::Ret
                        | r3dla_isa::BranchKind::IndJump
                )
            ) && inst.op != r3dla_isa::Op::Halt;
            if fallthrough && last + 1 < n {
                succ.push(block_of[last + 1]);
            }
            if inst.has_static_target() {
                let t = ((inst.imm as u64).wrapping_sub(CODE_BASE) / INST_BYTES) as usize;
                if t < n {
                    succ.push(block_of[t]);
                }
            }
            // Calls also continue at the return point; returns/indirect
            // jumps conservatively reach every block that is a call-return
            // site or jump-table target. For slicing we only need register
            // def flow; conservatively link rets to all call fallthroughs.
            if matches!(
                inst.branch_kind(),
                Some(
                    r3dla_isa::BranchKind::Ret
                        | r3dla_isa::BranchKind::IndJump
                        | r3dla_isa::BranchKind::IndCall
                )
            ) {
                for (i, other) in insts.iter().enumerate() {
                    if matches!(
                        other.branch_kind(),
                        Some(r3dla_isa::BranchKind::Call | r3dla_isa::BranchKind::IndCall)
                    ) && i + 1 < n
                    {
                        succ.push(block_of[i + 1]);
                    }
                    // Indirect jumps may target any block leader that is
                    // the target of a data-table entry; approximate with
                    // every leader (cheap at our binary sizes).
                }
                if matches!(inst.branch_kind(), Some(r3dla_isa::BranchKind::IndJump)) {
                    for (bb, _) in block_starts.iter().enumerate() {
                        succ.push(bb);
                    }
                }
            }
            succ.sort_unstable();
            succ.dedup();
        }
        // --- Reaching definitions ----------------------------------------
        // def_sites[r] = list of instruction indices defining register r.
        let mut def_sites: Vec<Vec<usize>> = vec![Vec::new(); Reg::COUNT];
        for (i, inst) in insts.iter().enumerate() {
            if let Some(rd) = inst.def() {
                def_sites[rd.index()].push(i);
            }
        }
        // Per block: last def of each register in the block (gen), and
        // whether the block kills the register.
        let mut block_gen: Vec<HashMap<usize, usize>> = vec![HashMap::new(); nb];
        for (b, bgen) in block_gen.iter_mut().enumerate() {
            let (start, end) = (block_starts[b], block_end(b));
            for (i, inst) in insts.iter().enumerate().take(end).skip(start) {
                if let Some(rd) = inst.def() {
                    bgen.insert(rd.index(), i);
                }
            }
        }
        // IN/OUT per block: map register -> BitSet of def sites. To keep
        // it compact, store per (block, reg) bitsets only for registers
        // that are ever defined.
        let live_regs: Vec<usize> = (0..Reg::COUNT)
            .filter(|&r| !def_sites[r].is_empty())
            .collect();
        let reg_slot: HashMap<usize, usize> =
            live_regs.iter().enumerate().map(|(s, &r)| (r, s)).collect();
        let nslots = live_regs.len();
        let mut in_sets: Vec<Vec<BitSet>> = (0..nb)
            .map(|_| (0..nslots).map(|_| BitSet::new(n)).collect())
            .collect();
        let mut out_sets = in_sets.clone();
        // Initialize OUT with gen.
        for b in 0..nb {
            for (&r, &site) in &block_gen[b] {
                out_sets[b][reg_slot[&r]].insert(site);
            }
        }
        // Iterate to fixpoint.
        let mut changed = true;
        while changed {
            changed = false;
            for b in 0..nb {
                // IN[b] = union of OUT[preds]; we iterate succs instead:
                // push OUT[b] into IN[s].
                for &s in &succs[b] {
                    for slot in 0..nslots {
                        let src = out_sets[b][slot].clone();
                        if in_sets[s][slot].union_with(&src) {
                            changed = true;
                        }
                    }
                }
            }
            for b in 0..nb {
                for slot in 0..nslots {
                    let r = live_regs[slot];
                    if block_gen[b].contains_key(&r) {
                        // Killed within the block; OUT stays {gen site}.
                        continue;
                    }
                    let src = in_sets[b][slot].clone();
                    if out_sets[b][slot].union_with(&src) {
                        changed = true;
                    }
                }
            }
        }
        // --- Per-instruction producers ------------------------------------
        let mut producers: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut addr_producers: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut dependents = vec![0usize; n];
        for b in 0..nb {
            // Walk the block, tracking current local def per register.
            let mut local: HashMap<usize, usize> = HashMap::new();
            for i in block_starts[b]..block_end(b) {
                for (use_slot, used) in insts[i].uses().iter().enumerate() {
                    let Some(used) = used else { continue };
                    let r = used.index();
                    let is_addr_use = insts[i].is_mem() && use_slot == 0;
                    if let Some(&d) = local.get(&r) {
                        producers[i].push(d);
                        if is_addr_use {
                            addr_producers[i].push(d);
                        }
                        dependents[d] += 1;
                    } else if let Some(&slot) = reg_slot.get(&r) {
                        for d in in_sets[b][slot].iter() {
                            producers[i].push(d);
                            if is_addr_use {
                                addr_producers[i].push(d);
                            }
                            dependents[d] += 1;
                        }
                    }
                }
                if let Some(rd) = insts[i].def() {
                    local.insert(rd.index(), i);
                }
            }
        }
        Self {
            producers,
            addr_producers,
            dependents,
            n,
        }
    }

    /// The instructions whose definitions may feed instruction `i`.
    pub fn producers(&self, i: usize) -> &[usize] {
        &self.producers[i]
    }

    /// Producers of a memory instruction's address operand only.
    pub fn addr_producers(&self, i: usize) -> &[usize] {
        &self.addr_producers[i]
    }

    /// Static fanout of instruction `i`'s definition.
    pub fn dependents(&self, i: usize) -> usize {
        self.dependents[i]
    }

    /// Number of static instructions analyzed.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the program was empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Computes the backward slice of `seeds`: the closure over register
    /// producers plus profiled memory dependences (`mem_deps` maps a load
    /// index to the store indices observed to feed it; pairs further than
    /// `max_mem_dep_distance` static instructions apart are ignored, per
    /// paper Appendix A).
    pub fn backward_slice(
        &self,
        seeds: &[usize],
        mem_deps: &HashMap<usize, Vec<usize>>,
        max_mem_dep_distance: usize,
    ) -> BitSet {
        let mut included = BitSet::new(self.n);
        let mut queue: Vec<usize> = Vec::new();
        for &s in seeds {
            if s < self.n && included.insert(s) {
                queue.push(s);
            }
        }
        while let Some(i) = queue.pop() {
            for &p in self.producers(i) {
                if included.insert(p) {
                    queue.push(p);
                }
            }
            if let Some(stores) = mem_deps.get(&i) {
                for &s in stores {
                    if s.abs_diff(i) <= max_mem_dep_distance && included.insert(s) {
                        queue.push(s);
                    }
                }
            }
        }
        included
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use r3dla_isa::{Asm, Reg};

    #[test]
    fn bitset_basics() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(!s.insert(0));
        assert!(s.insert(129));
        assert!(s.contains(129));
        assert!(!s.contains(64));
        assert_eq!(s.count(), 2);
        let members: Vec<_> = s.iter().collect();
        assert_eq!(members, vec![0, 129]);
    }

    #[test]
    fn straightline_producers() {
        let mut a = Asm::new();
        let (x, y) = (Reg::int(10), Reg::int(11));
        a.li(x, 1); // 0
        a.li(y, 2); // 1
        a.add(x, x, y); // 2 uses 0, 1
        a.halt(); // 3
        let p = a.finish().unwrap();
        let df = Dataflow::analyze(&p);
        let mut prods = df.producers(2).to_vec();
        prods.sort_unstable();
        assert_eq!(prods, vec![0, 1]);
        assert_eq!(df.dependents(0), 1);
        assert_eq!(df.dependents(1), 1);
    }

    #[test]
    fn loop_carried_defs_reach_back() {
        let mut a = Asm::new();
        let i = Reg::int(10);
        a.li(i, 0); // 0
        a.label("top");
        a.addi(i, i, 1); // 1 — uses defs {0, 1} (loop carried)
        a.slti(Reg::int(11), i, 10); // 2
        a.bne(Reg::int(11), Reg::ZERO, "top"); // 3
        a.halt();
        let p = a.finish().unwrap();
        let df = Dataflow::analyze(&p);
        let mut prods = df.producers(1).to_vec();
        prods.sort_unstable();
        assert_eq!(prods, vec![0, 1], "loop-carried def must reach the add");
    }

    #[test]
    fn slice_includes_chain_only() {
        let mut a = Asm::new();
        let (x, y, z) = (Reg::int(10), Reg::int(11), Reg::int(12));
        a.li(x, 1); // 0: on chain
        a.li(y, 2); // 1: NOT on chain
        a.addi(x, x, 3); // 2: on chain
        a.addi(y, y, 4); // 3: NOT
        a.beq(x, Reg::ZERO, "end"); // 4: seed
        a.label("end");
        a.add(z, y, y); // 5: NOT
        a.halt(); // 6
        let p = a.finish().unwrap();
        let df = Dataflow::analyze(&p);
        let slice = df.backward_slice(&[4], &HashMap::new(), 1000);
        assert!(slice.contains(4));
        assert!(slice.contains(2));
        assert!(slice.contains(0));
        assert!(!slice.contains(1));
        assert!(!slice.contains(3));
        assert!(!slice.contains(5));
    }

    #[test]
    fn slice_follows_memory_dependences() {
        let mut a = Asm::new();
        let (b, v) = (Reg::int(10), Reg::int(11));
        a.li(b, 0x2000_0000); // 0
        a.li(v, 42); // 1
        a.st(v, b, 0); // 2: store feeding the load
        a.ld(v, b, 0); // 3: load
        a.beq(v, Reg::ZERO, "end"); // 4: seed
        a.label("end");
        a.halt();
        let p = a.finish().unwrap();
        let df = Dataflow::analyze(&p);
        let mut mem_deps = HashMap::new();
        mem_deps.insert(3usize, vec![2usize]);
        let with = df.backward_slice(&[4], &mem_deps, 1000);
        assert!(with.contains(2), "store feeding the sliced load included");
        assert!(with.contains(1), "store data chain included");
        // And the distance filter drops it.
        let without = df.backward_slice(&[4], &mem_deps, 0);
        assert!(!without.contains(2));
    }

    #[test]
    fn call_return_flow_reaches_caller() {
        let mut a = Asm::new();
        let x = Reg::int(10);
        a.li(x, 3); // 0
        a.call("f"); // 1
        a.beq(x, Reg::ZERO, "end"); // 2: seed — x defined in callee
        a.label("end");
        a.halt(); // 3
        a.label("f");
        a.addi(x, x, 1); // 4
        a.ret(); // 5
        let p = a.finish().unwrap();
        let df = Dataflow::analyze(&p);
        let slice = df.backward_slice(&[2], &HashMap::new(), 1000);
        assert!(slice.contains(4), "callee def must be in the slice");
    }
}
