//! The implicit-parallelism limit study of paper Fig 1: dataflow-limited
//! IPC under a moving instruction window, with ("real") or without
//! ("ideal") branch-misprediction and cache-miss constraints.

use std::collections::HashMap;

use r3dla_bpred::{DirectionPredictor, Tage};
use r3dla_isa::{step, ArchState, MemKind, Program, VecMem};
use r3dla_mem::{Cache, CacheConfig};

/// Constraint model for the limit study.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LimitModel {
    /// Perfect branch prediction and an idealized (always-hitting)
    /// data-supply subsystem: pure dataflow + window limits.
    Ideal,
    /// Realistic branch misprediction (TAGE) serializes fetch; loads pay
    /// simulated L1/L2/L3/DRAM latencies.
    Real,
}

/// Result of one limit-study run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LimitResult {
    /// Dynamic instructions analyzed.
    pub instructions: u64,
    /// Total (virtual) cycles.
    pub cycles: u64,
    /// Instructions per cycle.
    pub ipc: f64,
}

/// Runs the limit study over (at most) `max_insts` dynamic instructions
/// with a moving window of `window` instructions (paper: 128/512/2048).
pub fn ilp_limit(prog: &Program, window: usize, model: LimitModel, max_insts: u64) -> LimitResult {
    let mut st = ArchState::new(prog.entry());
    let mut mem = VecMem::new();
    mem.load_image(prog.image());
    // Completion time of the youngest write to each register / address.
    let mut reg_ready: [u64; 64] = [0; 64];
    let mut mem_ready: HashMap<u64, u64> = HashMap::new();
    // Ring buffer of completion times of the last `window` instructions.
    let mut ring: Vec<u64> = vec![0; window];
    let mut l1 = Cache::new(CacheConfig::l1());
    let mut l2 = Cache::new(CacheConfig::l2());
    let mut l3 = Cache::new(CacheConfig::l3());
    let mut predictor = Tage::paper();
    let mut fetch_serial_point: u64 = 0; // earliest start after a mispredict
    let mut count: u64 = 0;
    let mut horizon: u64 = 0;
    const MISPREDICT_PENALTY: u64 = 15;
    const DRAM_LAT: u64 = 180;
    for n in 0..max_insts {
        let pc = st.pc;
        let out = match step(prog, &mut st, &mut mem) {
            Ok(o) => o,
            Err(_) => break,
        };
        count += 1;
        // Dataflow readiness.
        let mut start = fetch_serial_point;
        for r in out.inst.uses().iter().flatten() {
            start = start.max(reg_ready[r.index()]);
        }
        // Window constraint: cannot start before the instruction
        // `window` older has completed.
        start = start.max(ring[(n as usize) % window]);
        // Latency.
        let mut latency = out.inst.latency();
        if let Some((kind, addr, _)) = out.mem {
            match model {
                LimitModel::Ideal => latency = 2,
                LimitModel::Real => {
                    if kind == MemKind::Load {
                        latency = if l1.touch(addr) {
                            3
                        } else if l2.touch(addr) {
                            12
                        } else if l3.touch(addr) {
                            48
                        } else {
                            DRAM_LAT
                        };
                    } else {
                        // Stores retire into the hierarchy off the
                        // critical path but still warm the caches.
                        l1.touch(addr);
                        l2.touch(addr);
                        l3.touch(addr);
                        latency = 1;
                    }
                    // RAW through memory.
                    if kind == MemKind::Load {
                        if let Some(&t) = mem_ready.get(&addr) {
                            start = start.max(t);
                        }
                    } else {
                        mem_ready.insert(addr, start + latency);
                    }
                }
            }
        }
        let done = start + latency;
        // Branch handling.
        if let Some(taken) = out.taken {
            if model == LimitModel::Real {
                let pred = predictor.predict(pc);
                let mispredicted = pred != taken;
                if mispredicted {
                    let h = predictor.history();
                    predictor.restore_history(h >> 1, Some(taken));
                    fetch_serial_point = fetch_serial_point.max(done + MISPREDICT_PENALTY);
                }
                predictor.update(pc, taken, mispredicted);
            }
        }
        if let Some((rd, _)) = out.wrote {
            reg_ready[rd.index()] = done;
        }
        ring[(n as usize) % window] = done;
        horizon = horizon.max(done);
        if out.halted {
            break;
        }
    }
    let cycles = horizon.max(1);
    LimitResult {
        instructions: count,
        cycles,
        ipc: count as f64 / cycles as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use r3dla_isa::{Asm, Reg};

    fn independent_work() -> Program {
        let mut a = Asm::new();
        let (i, n) = (Reg::int(10), Reg::int(11));
        a.li(i, 0);
        a.li(n, 4000);
        a.label("loop");
        for k in 0..12 {
            a.li(Reg::int(12 + (k % 8) as u8), k);
        }
        a.addi(i, i, 1);
        a.blt(i, n, "loop");
        a.halt();
        a.finish().unwrap()
    }

    fn serial_chain() -> Program {
        let mut a = Asm::new();
        let (i, n, x) = (Reg::int(10), Reg::int(11), Reg::int(12));
        a.li(i, 0);
        a.li(n, 4000);
        a.li(x, 1);
        a.label("loop");
        for _ in 0..12 {
            a.mul(x, x, x); // fully serial
        }
        a.addi(i, i, 1);
        a.blt(i, n, "loop");
        a.halt();
        a.finish().unwrap()
    }

    #[test]
    fn parallel_code_has_high_ideal_ilp() {
        let p = independent_work();
        let r = ilp_limit(&p, 512, LimitModel::Ideal, 100_000);
        assert!(r.ipc > 8.0, "ideal ILP of independent work: {}", r.ipc);
    }

    #[test]
    fn serial_code_has_low_ilp_regardless() {
        let p = serial_chain();
        let r = ilp_limit(&p, 2048, LimitModel::Ideal, 100_000);
        assert!(r.ipc < 1.0, "serial chain ILP: {}", r.ipc);
    }

    #[test]
    fn bigger_windows_expose_more_parallelism() {
        let p = independent_work();
        let small = ilp_limit(&p, 128, LimitModel::Ideal, 100_000);
        let large = ilp_limit(&p, 2048, LimitModel::Ideal, 100_000);
        assert!(
            large.ipc >= small.ipc * 0.99,
            "{} vs {}",
            large.ipc,
            small.ipc
        );
    }

    #[test]
    fn real_constraints_reduce_ipc() {
        // Data-dependent branches + large-footprint loads: real model
        // must be much slower than ideal (the Fig 1 gap).
        let mut rng = r3dla_stats::Rng::new(8);
        let n = 32_768usize;
        let mut a = Asm::new();
        let arr = a.data().alloc_words(n);
        for i in 0..n {
            a.data().put_word(arr + (i as u64) * 8, rng.next_u64());
        }
        let (i, lim, b, v, acc) = (
            Reg::int(10),
            Reg::int(11),
            Reg::int(12),
            Reg::int(13),
            Reg::int(14),
        );
        a.li(i, 0);
        a.li(lim, n as i64);
        a.li(b, arr as i64);
        a.label("loop");
        a.slli(v, i, 3);
        a.add(v, v, b);
        a.ld(v, v, 0);
        a.andi(v, v, 1);
        a.beq(v, Reg::ZERO, "skip");
        a.addi(acc, acc, 1);
        a.label("skip");
        a.addi(i, i, 1);
        a.blt(i, lim, "loop");
        a.halt();
        let p = a.finish().unwrap();
        let ideal = ilp_limit(&p, 512, LimitModel::Ideal, 200_000);
        let real = ilp_limit(&p, 512, LimitModel::Real, 200_000);
        assert!(
            ideal.ipc > real.ipc * 2.0,
            "ideal {} vs real {}",
            ideal.ipc,
            real.ipc
        );
    }
}
