//! The look-ahead thread's speculative memory view: an address→value
//! overlay on top of the shared architectural memory (paper §III-A i,
//! "containment of speculation").

use std::cell::RefCell;
use std::rc::Rc;

use r3dla_cpu::ThreadMem;
use r3dla_isa::{DataMem, FxHashMap, VecMem};

/// LT's memory view: reads prefer LT's own (speculative) stores, falling
/// back to the shared architectural memory; writes never escape the
/// overlay — the software analogue of discard-dirty private caches.
#[derive(Debug)]
pub struct OverlayMem {
    base: Rc<RefCell<VecMem>>,
    delta: FxHashMap<u64, u64>,
}

impl OverlayMem {
    /// Creates an overlay over the shared memory.
    pub fn new(base: Rc<RefCell<VecMem>>) -> Self {
        Self {
            base,
            delta: FxHashMap::default(),
        }
    }

    /// Discards all speculative state (reboot).
    pub fn clear(&mut self) {
        self.delta.clear();
    }

    /// Number of speculatively written words.
    pub fn dirty_words(&self) -> usize {
        self.delta.len()
    }
}

impl ThreadMem for OverlayMem {
    fn load(&mut self, addr: u64) -> u64 {
        let a = addr & !7;
        match self.delta.get(&a) {
            Some(&v) => v,
            None => self.base.borrow_mut().load(a),
        }
    }

    fn store(&mut self, addr: u64, val: u64) {
        self.delta.insert(addr & !7, val);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_through_to_base() {
        let base = Rc::new(RefCell::new(VecMem::new()));
        base.borrow_mut().store(0x100, 7);
        let mut ov = OverlayMem::new(Rc::clone(&base));
        assert_eq!(ov.load(0x100), 7);
    }

    #[test]
    fn writes_stay_speculative() {
        let base = Rc::new(RefCell::new(VecMem::new()));
        base.borrow_mut().store(0x100, 7);
        let mut ov = OverlayMem::new(Rc::clone(&base));
        ov.store(0x100, 99);
        assert_eq!(ov.load(0x100), 99, "LT sees its own store");
        assert_eq!(base.borrow_mut().load(0x100), 7, "MT never sees it");
        assert_eq!(ov.dirty_words(), 1);
    }

    #[test]
    fn clear_discards_speculation() {
        let base = Rc::new(RefCell::new(VecMem::new()));
        let mut ov = OverlayMem::new(Rc::clone(&base));
        ov.store(0x200, 5);
        ov.clear();
        assert_eq!(ov.load(0x200), 0);
        assert_eq!(ov.dirty_words(), 0);
    }

    #[test]
    fn base_updates_visible_unless_shadowed() {
        let base = Rc::new(RefCell::new(VecMem::new()));
        let mut ov = OverlayMem::new(Rc::clone(&base));
        base.borrow_mut().store(0x300, 1);
        assert_eq!(ov.load(0x300), 1);
        ov.store(0x300, 2);
        base.borrow_mut().store(0x300, 3); // MT commits a newer value
        assert_eq!(ov.load(0x300), 2, "overlay shadows MT's update");
    }
}
