//! A vendored FxHash-style hasher for the simulator's hot lookup tables.
//!
//! The default `std::collections::HashMap` hasher (SipHash-1-3) is
//! DoS-resistant but costs tens of cycles per lookup — measurable on the
//! per-instruction paths (`VecMem` page lookups, indirect-target hints,
//! the LT memory overlay). Simulation state is never attacker-controlled,
//! so we trade that resistance for the multiply-xor mix used by rustc's
//! `FxHasher`: one rotate, one xor and one multiply per word.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative mixing constant (golden-ratio derived, as in rustc's
/// `FxHasher`).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast, non-cryptographic hasher for trusted keys.
///
/// # Examples
///
/// ```
/// use r3dla_isa::FxHashMap;
/// let mut m: FxHashMap<u64, u64> = FxHashMap::default();
/// m.insert(0x4000, 7);
/// assert_eq!(m.get(&0x4000), Some(&7));
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.mix(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.mix(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.mix(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.mix(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.mix(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.mix(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_keys_hash_identically() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u64(0xDEAD_BEEF);
        b.write_u64(0xDEAD_BEEF);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn different_keys_usually_differ() {
        let hashes: FxHashSet<u64> = (0..1000u64)
            .map(|k| {
                let mut h = FxHasher::default();
                h.write_u64(k);
                h.finish()
            })
            .collect();
        assert_eq!(hashes.len(), 1000, "1000 small keys must not collide");
    }

    #[test]
    fn byte_writes_cover_partial_chunks() {
        let mut h = FxHasher::default();
        h.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]); // one full chunk + remainder
        let full = h.finish();
        let mut h2 = FxHasher::default();
        h2.write(&[1, 2, 3, 4, 5, 6, 7, 8]);
        assert_ne!(full, h2.finish(), "trailing bytes must affect the hash");
    }

    #[test]
    fn map_and_set_round_trip() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        for k in 0..64u64 {
            m.insert(k << 12, "page");
        }
        assert_eq!(m.len(), 64);
        assert!(m.contains_key(&(5u64 << 12)));
        assert!(!m.contains_key(&1));
    }
}
