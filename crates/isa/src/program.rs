//! The static program binary: instructions plus an initial data image.

use crate::inst::Inst;

/// Base address of the code segment.
pub const CODE_BASE: u64 = 0x0001_0000;
/// Base address of the data (heap) segment used by the data builder.
pub const DATA_BASE: u64 = 0x2000_0000;
/// Initial stack pointer (stack grows down).
pub const STACK_TOP: u64 = 0x7FFF_FF00;
/// Size of one instruction slot in bytes.
pub const INST_BYTES: u64 = 4;

/// A complete program: code, entry point and initial data image.
///
/// Produced by [`crate::Asm::finish`]; consumed by the functional executor
/// and the timing cores. PCs map 1:1 to instruction indices
/// (`pc = CODE_BASE + index * INST_BYTES`), which is what allows DLA
/// skeletons to be plain bit vectors over the binary.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    insts: Vec<Inst>,
    entry: u64,
    image: Vec<(u64, u64)>,
    name: String,
}

impl Program {
    /// Creates a program from raw parts.
    ///
    /// `image` is a list of `(address, 64-bit word)` initializers.
    pub fn from_parts(
        name: impl Into<String>,
        insts: Vec<Inst>,
        entry_index: usize,
        image: Vec<(u64, u64)>,
    ) -> Self {
        Self {
            insts,
            entry: CODE_BASE + entry_index as u64 * INST_BYTES,
            image,
            name: name.into(),
        }
    }

    /// The program's human-readable name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Base PC of the code segment.
    pub fn code_base(&self) -> u64 {
        CODE_BASE
    }

    /// The entry PC.
    pub fn entry(&self) -> u64 {
        self.entry
    }

    /// Number of static instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// All static instructions, in layout order.
    pub fn insts(&self) -> &[Inst] {
        &self.insts
    }

    /// The initial data image as `(address, word)` pairs.
    pub fn image(&self) -> &[(u64, u64)] {
        &self.image
    }

    /// Converts a PC to a static instruction index, if it is in range and
    /// properly aligned.
    #[inline]
    pub fn pc_to_index(&self, pc: u64) -> Option<usize> {
        if pc < CODE_BASE || !(pc - CODE_BASE).is_multiple_of(INST_BYTES) {
            return None;
        }
        let idx = ((pc - CODE_BASE) / INST_BYTES) as usize;
        (idx < self.insts.len()).then_some(idx)
    }

    /// Converts a static instruction index to its PC.
    #[inline]
    pub fn index_to_pc(&self, index: usize) -> u64 {
        CODE_BASE + index as u64 * INST_BYTES
    }

    /// Fetches the instruction at `pc`, or `None` when `pc` is outside the
    /// code segment (wrong-path fetches may run off the binary).
    #[inline]
    pub fn fetch(&self, pc: u64) -> Option<Inst> {
        self.pc_to_index(pc).map(|i| self.insts[i])
    }

    /// A simple textual disassembly listing, for debugging and examples.
    pub fn disassemble(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (i, inst) in self.insts.iter().enumerate() {
            let _ = writeln!(out, "{:#08x}:  {}", self.index_to_pc(i), inst);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{Op, Reg};

    fn tiny() -> Program {
        let insts = vec![
            Inst {
                op: Op::Li,
                rd: Reg::int(10),
                rs1: Reg::ZERO,
                rs2: Reg::ZERO,
                imm: 1,
            },
            Inst::NOP,
            Inst {
                op: Op::Halt,
                ..Inst::NOP
            },
        ];
        Program::from_parts("tiny", insts, 0, vec![(DATA_BASE, 99)])
    }

    #[test]
    fn pc_index_round_trip() {
        let p = tiny();
        for i in 0..p.len() {
            let pc = p.index_to_pc(i);
            assert_eq!(p.pc_to_index(pc), Some(i));
        }
    }

    #[test]
    fn out_of_range_pcs_fail() {
        let p = tiny();
        assert_eq!(p.pc_to_index(0), None);
        assert_eq!(p.pc_to_index(CODE_BASE + 1), None); // misaligned
        assert_eq!(p.pc_to_index(CODE_BASE + 100 * INST_BYTES), None);
        assert!(p.fetch(CODE_BASE + 100 * INST_BYTES).is_none());
    }

    #[test]
    fn entry_points_at_first_instruction() {
        let p = tiny();
        assert_eq!(p.entry(), CODE_BASE);
        assert_eq!(p.fetch(p.entry()).map(|i| i.op), Some(Op::Li));
    }

    #[test]
    fn disassembly_lists_every_instruction() {
        let p = tiny();
        let d = p.disassemble();
        assert_eq!(d.lines().count(), p.len());
        assert!(d.contains("halt"));
    }
}
