//! Decoded superblock traces: predicted instruction paths pre-decoded
//! into flat uop arrays, for GIPS-class functional fast-forwarding.
//!
//! The per-instruction interpreter ([`crate::step`]) pays for a PC range
//! check, an instruction fetch, a full [`StepOut`](crate::StepOut)
//! record and an `Option` return on *every* instruction. A
//! [`DecodedBlock`] pays those costs once per *trace* instead: at first
//! entry, decoding follows the statically predicted path from the entry
//! PC — through direct jumps, and through conditional branches along
//! their likely edge (backward taken, forward not-taken), so loops
//! unroll into long straight uop runs — until a `halt`, an indirect
//! jump, the [`MAX_BLOCK_UOPS`] cap or the code-segment edge ends the
//! trace. Subsequent executions dispatch the whole trace with
//! [`exec_uops`]: a tight jump-table loop with no fetch, no range check
//! and no per-step observability record, in which a conditional branch
//! is one compare — execution stays on the trace while the branch goes
//! the predicted way and side-exits with the correct PC the moment it
//! does not.
//!
//! Terminators (`halt`, indirect jumps) and any *observed* or
//! budget-limited replay go through [`crate::exec_inst`], the same
//! function [`crate::step`] uses, so trace-cached execution is
//! bit-identical to single stepping — the checkpoint-equivalence suites
//! gate on exactly that.
//!
//! Code is immutable in this ISA (stores cannot reach the code segment),
//! so decoded traces never need invalidation and a [`BlockCache`] is a
//! plain map from entry PC to trace, fronted by a direct-mapped
//! recent-trace table.

use crate::exec::{eval_alu, exec_inst, ArchState, DataMem};
use crate::hash::FxHashMap;
use crate::inst::{Inst, Op, Reg};
use crate::program::{Program, INST_BYTES};

/// Maximum body length of one decoded trace, in uops (= instructions).
/// Long predicted paths — loop unrolls included — split with a
/// [`Terminator::Fall`] into the successor trace, bounding both decode
/// latency and per-dispatch work.
pub const MAX_BLOCK_UOPS: usize = 512;

/// One pre-decoded operation on a trace's predicted path.
///
/// The common ALU operations get their own variants so [`exec_uops`]
/// dispatches each uop with a *single* jump-table branch — folding the
/// interpreter's secondary `eval_alu` match into decode. Rare ops
/// (div/rem, floating point, conversions) stay behind [`Uop::Exotic`]
/// and route through [`eval_alu`]. Conditional branches on the path
/// become per-condition branch side-exits ([`Uop::BrEq`] and its five
/// siblings). A peephole pass then fuses the dependent pairs that
/// dominate steady loop bodies — `addi`+`st` ([`Uop::AddiStore`]),
/// `addi`+branch ([`Uop::AddiBrEq`] and siblings), `mul`+`add`
/// ([`Uop::MulAdd`]) and base+index `add`+`ld`/`st` ([`Uop::AddLoad`],
/// [`Uop::AddStore`]) — into two-instruction uops, cutting dispatches
/// per loop iteration; direct jumps become [`Uop::Nop`]
/// (or [`Uop::Li`] writing the link register), since decode already
/// followed them. Register operands are carried directly so execution
/// needs no re-decode; the original [`Inst`] path is kept alongside in
/// the trace (see [`DecodedBlock::insts`]) for observed replays that
/// must reproduce the interpreter's exact [`StepOut`](crate::StepOut)
/// stream.
///
/// Tuple operand order is `(rd, rs1, rs2)` / `(rd, rs1, imm)` — the
/// assembly operand order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Uop {
    /// `rd = rs1 + rs2` (wrapping).
    Add(Reg, Reg, Reg),
    /// `rd = rs1 - rs2` (wrapping).
    Sub(Reg, Reg, Reg),
    /// `rd = rs1 * rs2` (wrapping).
    Mul(Reg, Reg, Reg),
    /// `rd = rs1 & rs2`.
    And(Reg, Reg, Reg),
    /// `rd = rs1 | rs2`.
    Or(Reg, Reg, Reg),
    /// `rd = rs1 ^ rs2`.
    Xor(Reg, Reg, Reg),
    /// `rd = rs1 << (rs2 & 63)`.
    Sll(Reg, Reg, Reg),
    /// `rd = rs1 >> (rs2 & 63)` (logical).
    Srl(Reg, Reg, Reg),
    /// `rd = rs1 >> (rs2 & 63)` (arithmetic).
    Sra(Reg, Reg, Reg),
    /// `rd = (rs1 < rs2)` signed.
    Slt(Reg, Reg, Reg),
    /// `rd = (rs1 < rs2)` unsigned.
    Sltu(Reg, Reg, Reg),
    /// `rd = rs1 + imm` (wrapping).
    Addi(Reg, Reg, i64),
    /// `rd = rs1 & imm`.
    Andi(Reg, Reg, i64),
    /// `rd = rs1 | imm`.
    Ori(Reg, Reg, i64),
    /// `rd = rs1 ^ imm`.
    Xori(Reg, Reg, i64),
    /// `rd = rs1 << (imm & 63)`.
    Slli(Reg, Reg, i64),
    /// `rd = rs1 >> (imm & 63)` (logical).
    Srli(Reg, Reg, i64),
    /// `rd = rs1 >> (imm & 63)` (arithmetic).
    Srai(Reg, Reg, i64),
    /// `rd = (rs1 < imm)` signed.
    Slti(Reg, Reg, i64),
    /// `rd = imm` (also encodes a direct jump's link-register write —
    /// the jump itself was followed at decode time).
    Li(Reg, i64),
    /// `rd = mem[(rs1 + imm) & !7]`.
    Load(Reg, Reg, i64),
    /// `mem[(rs1 + imm) & !7] = rs2`; operands `(rs1, rs2, imm)`.
    Store(Reg, Reg, i64),
    /// No architectural effect (also a followed direct jump with no
    /// link write).
    Nop,
    /// `beq` on the trace: continue while `(a == b) == assume`, leave
    /// the trace at `exit` otherwise. One specialized variant per
    /// condition keeps branch evaluation a single dispatch (no
    /// secondary condition match); `assume` is the predicted (and
    /// decoded-along) direction, `true` = taken.
    BrEq {
        /// First compared register.
        a: Reg,
        /// Second compared register.
        b: Reg,
        /// PC control transfers to on a mispredicted direction.
        exit: u64,
        /// The predicted direction.
        assume: bool,
    },
    /// `bne` on the trace (see [`Uop::BrEq`]).
    BrNe {
        /// First compared register.
        a: Reg,
        /// Second compared register.
        b: Reg,
        /// PC control transfers to on a mispredicted direction.
        exit: u64,
        /// The predicted direction.
        assume: bool,
    },
    /// `blt` (signed) on the trace (see [`Uop::BrEq`]).
    BrLt {
        /// First compared register.
        a: Reg,
        /// Second compared register.
        b: Reg,
        /// PC control transfers to on a mispredicted direction.
        exit: u64,
        /// The predicted direction.
        assume: bool,
    },
    /// `bge` (signed) on the trace (see [`Uop::BrEq`]).
    BrGe {
        /// First compared register.
        a: Reg,
        /// Second compared register.
        b: Reg,
        /// PC control transfers to on a mispredicted direction.
        exit: u64,
        /// The predicted direction.
        assume: bool,
    },
    /// `bltu` (unsigned) on the trace (see [`Uop::BrEq`]).
    BrLtu {
        /// First compared register.
        a: Reg,
        /// Second compared register.
        b: Reg,
        /// PC control transfers to on a mispredicted direction.
        exit: u64,
        /// The predicted direction.
        assume: bool,
    },
    /// `bgeu` (unsigned) on the trace (see [`Uop::BrEq`]).
    BrGeu {
        /// First compared register.
        a: Reg,
        /// Second compared register.
        b: Reg,
        /// PC control transfers to on a mispredicted direction.
        exit: u64,
        /// The predicted direction.
        assume: bool,
    },
    /// Fused `addi` + `st` pair — two instructions, one dispatch:
    /// `rd = rs + k`, then `mem[(base + off) & !7] = src` (the store
    /// reads registers *after* the add, so `base`/`src` may be `rd`).
    /// Decode fuses the pair only when both immediates fit `i16`; wider
    /// ones keep the unfused uops. Retires two instructions.
    AddiStore {
        /// Add destination.
        rd: Reg,
        /// Add source.
        rs: Reg,
        /// Add immediate.
        k: i16,
        /// Store base-address register.
        base: Reg,
        /// Store source register.
        src: Reg,
        /// Store offset.
        off: i16,
    },
    /// Fused `addi` + `beq` pair — the loop-counter-update/compare-branch
    /// idiom that ends almost every hot loop body: `rd = rs + k`, then
    /// branch exactly as [`Uop::BrEq`] (the compare reads registers after
    /// the add). Decode fuses only when `k` fits `i16` and `exit` fits
    /// `u32` (code PCs always do). Retires two instructions; a side-exit
    /// retires both before leaving.
    AddiBrEq {
        /// Add destination.
        rd: Reg,
        /// Add source.
        rs: Reg,
        /// Add immediate.
        k: i16,
        /// First compared register.
        a: Reg,
        /// Second compared register.
        b: Reg,
        /// PC control transfers to on a mispredicted direction.
        exit: u32,
        /// The predicted direction.
        assume: bool,
    },
    /// Fused `addi` + `bne` (see [`Uop::AddiBrEq`]).
    AddiBrNe {
        /// Add destination.
        rd: Reg,
        /// Add source.
        rs: Reg,
        /// Add immediate.
        k: i16,
        /// First compared register.
        a: Reg,
        /// Second compared register.
        b: Reg,
        /// PC control transfers to on a mispredicted direction.
        exit: u32,
        /// The predicted direction.
        assume: bool,
    },
    /// Fused `addi` + `blt` (see [`Uop::AddiBrEq`]).
    AddiBrLt {
        /// Add destination.
        rd: Reg,
        /// Add source.
        rs: Reg,
        /// Add immediate.
        k: i16,
        /// First compared register.
        a: Reg,
        /// Second compared register.
        b: Reg,
        /// PC control transfers to on a mispredicted direction.
        exit: u32,
        /// The predicted direction.
        assume: bool,
    },
    /// Fused `addi` + `bge` (see [`Uop::AddiBrEq`]).
    AddiBrGe {
        /// Add destination.
        rd: Reg,
        /// Add source.
        rs: Reg,
        /// Add immediate.
        k: i16,
        /// First compared register.
        a: Reg,
        /// Second compared register.
        b: Reg,
        /// PC control transfers to on a mispredicted direction.
        exit: u32,
        /// The predicted direction.
        assume: bool,
    },
    /// Fused `addi` + `bltu` (see [`Uop::AddiBrEq`]).
    AddiBrLtu {
        /// Add destination.
        rd: Reg,
        /// Add source.
        rs: Reg,
        /// Add immediate.
        k: i16,
        /// First compared register.
        a: Reg,
        /// Second compared register.
        b: Reg,
        /// PC control transfers to on a mispredicted direction.
        exit: u32,
        /// The predicted direction.
        assume: bool,
    },
    /// Fused `addi` + `bgeu` (see [`Uop::AddiBrEq`]).
    AddiBrGeu {
        /// Add destination.
        rd: Reg,
        /// Add source.
        rs: Reg,
        /// Add immediate.
        k: i16,
        /// First compared register.
        a: Reg,
        /// Second compared register.
        b: Reg,
        /// PC control transfers to on a mispredicted direction.
        exit: u32,
        /// The predicted direction.
        assume: bool,
    },
    /// Fused `mul` + `add` pair — the row-major index computation
    /// (`row * stride` then `+ col`) and multiply-accumulate idiom:
    /// `rd1 = a * b`, then `rd2 = c + d` (the add reads registers after
    /// the mul, so `c`/`d` may be `rd1`). Retires two instructions.
    MulAdd {
        /// Mul destination.
        rd1: Reg,
        /// First mul source.
        a: Reg,
        /// Second mul source.
        b: Reg,
        /// Add destination.
        rd2: Reg,
        /// First add source.
        c: Reg,
        /// Second add source.
        d: Reg,
    },
    /// Fused `add` + `ld` pair — base+index addressing: `rd1 = a + b`,
    /// then `rd2 = mem[(rs + off) & !7]` (the load reads registers after
    /// the add, so `rs` is usually `rd1`). Fused only when `off` fits
    /// `i16`. Retires two instructions.
    AddLoad {
        /// Add destination.
        rd1: Reg,
        /// First add source.
        a: Reg,
        /// Second add source.
        b: Reg,
        /// Load destination.
        rd2: Reg,
        /// Load base-address register.
        rs: Reg,
        /// Load offset.
        off: i16,
    },
    /// Fused `add` + `st` pair — base+index addressing on the store
    /// side: `rd1 = a + b`, then `mem[(base + off) & !7] = src` (the
    /// store reads registers after the add). Fused only when `off` fits
    /// `i16`. Retires two instructions.
    AddStore {
        /// Add destination.
        rd1: Reg,
        /// First add source.
        a: Reg,
        /// Second add source.
        b: Reg,
        /// Store base-address register.
        base: Reg,
        /// Store source register.
        src: Reg,
        /// Store offset.
        off: i16,
    },
    /// `rd = eval_alu(op, rs1, rs2, imm)` — the rare computational ops
    /// (div/rem, floating point, conversions) not worth a variant.
    Exotic {
        /// The ALU operation.
        op: Op,
        /// Destination register.
        rd: Reg,
        /// First source register.
        rs1: Reg,
        /// Second source register (immediate forms ignore it).
        rs2: Reg,
        /// Immediate operand.
        imm: i64,
    },
}

/// How a decoded trace ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Terminator {
    /// An instruction decode cannot follow — `halt` or an indirect jump
    /// (`jalr`) — at `pc`. Executed through [`crate::exec_inst`] (one
    /// retired instruction).
    Inst {
        /// The terminating instruction.
        inst: Inst,
        /// Its PC.
        pc: u64,
    },
    /// The predicted path reached [`MAX_BLOCK_UOPS`]; execution
    /// continues at `next` (no instruction retires for this terminator).
    Fall {
        /// Entry PC of the successor trace.
        next: u64,
    },
    /// `pc` is outside the code segment (the program ran off the end).
    /// Execution halts without retiring an instruction, mirroring the
    /// interpreter's `PcOutOfRange` path.
    OutOfRange {
        /// The out-of-range PC.
        pc: u64,
    },
}

/// A trace decoded at `entry`: the flat uop body of its predicted
/// instruction path plus its [`Terminator`], and the original
/// instructions with their PCs for exact replay.
///
/// Pair fusion makes uops coarser than instructions, so the body keeps
/// two parallel indexings: `uops` (dispatch order) and `insts`/`pcs`
/// (instruction order, the replay and accounting domain), bridged by
/// `ends`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodedBlock {
    entry: u64,
    uops: Vec<Uop>,
    insts: Vec<Inst>,
    /// `pcs[i]` is the PC of body instruction `i`; `pcs[len]` is the
    /// terminator slot's PC (predicted paths are not PC-contiguous, so
    /// this cannot be computed from `entry`).
    pcs: Vec<u64>,
    /// `ends[u]` is the number of body *instructions* covered once uop
    /// `u` completes — the retired-instruction count when a branch uop
    /// side-exits, and the `insts` index one past the uop's last
    /// instruction. `ends[u] == u + 1` until the first fused uop.
    ends: Vec<u32>,
    term: Terminator,
}

impl DecodedBlock {
    /// The trace's entry PC.
    pub fn entry(&self) -> u64 {
        self.entry
    }

    /// The pre-decoded body (the predicted instruction path).
    pub fn uops(&self) -> &[Uop] {
        &self.uops
    }

    /// The original body instructions (same length and order as
    /// [`uops`](Self::uops)) — the replay source for observed and
    /// budget-limited runs.
    pub fn insts(&self) -> &[Inst] {
        &self.insts
    }

    /// How the trace ends.
    pub fn term(&self) -> Terminator {
        self.term
    }

    /// Number of body instructions on the predicted path (the
    /// terminator, when it is an instruction, is not counted). Fusion
    /// makes this larger than `uops().len()` on most hot traces.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the body is empty (the entry PC is itself a terminator).
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// PC of the `i`-th body instruction; `pc_at(len())` is the
    /// terminator slot's PC. Replays compare the post-instruction PC
    /// against `pc_at(i + 1)` to detect the trace exit.
    pub fn pc_at(&self, i: usize) -> u64 {
        self.pcs[i]
    }
}

/// Decodes the trace entered at `entry`, following the statically
/// predicted path: direct jumps are followed unconditionally,
/// conditional branches along their likely edge (backward taken —
/// unrolling loops — forward not-taken). Decoding stops at `halt`, an
/// indirect jump, the code-segment boundary, or [`MAX_BLOCK_UOPS`].
pub fn decode_block(prog: &Program, entry: u64) -> DecodedBlock {
    decode_block_hinted(prog, entry, &FxHashMap::default())
}

/// [`decode_block`] with per-branch-PC direction overrides from
/// [`BlockCache`]'s exit-driven learner; branches absent from `hints`
/// use the static heuristic.
fn decode_block_hinted(prog: &Program, entry: u64, hints: &FxHashMap<u64, bool>) -> DecodedBlock {
    let mut uops = Vec::new();
    let mut insts = Vec::new();
    let mut pcs = Vec::new();
    let mut pc = entry;
    let term = loop {
        if uops.len() == MAX_BLOCK_UOPS {
            break Terminator::Fall { next: pc };
        }
        let Some(inst) = prog.fetch(pc) else {
            break Terminator::OutOfRange { pc };
        };
        use Op::*;
        let seq = pc + INST_BYTES;
        let (rd, rs1, rs2, imm) = (inst.rd, inst.rs1, inst.rs2, inst.imm);
        let next = match inst.op {
            Halt | Jalr => break Terminator::Inst { inst, pc },
            Beq | Bne | Blt | Bge | Bltu | Bgeu => {
                let target = imm as u64;
                // Backward (or self) => taken, unless learning overrode.
                let assume = hints.get(&pc).copied().unwrap_or(target <= pc);
                let exit = if assume { seq } else { target };
                let (a, b) = (rs1, rs2);
                uops.push(match inst.op {
                    Beq => Uop::BrEq { a, b, exit, assume },
                    Bne => Uop::BrNe { a, b, exit, assume },
                    Blt => Uop::BrLt { a, b, exit, assume },
                    Bge => Uop::BrGe { a, b, exit, assume },
                    Bltu => Uop::BrLtu { a, b, exit, assume },
                    _ => Uop::BrGeu { a, b, exit, assume },
                });
                if assume {
                    target
                } else {
                    seq
                }
            }
            Jal => {
                // Followed at decode time; only the link write remains.
                uops.push(if rd.is_zero() {
                    Uop::Nop
                } else {
                    Uop::Li(rd, seq as i64)
                });
                imm as u64
            }
            Add => {
                uops.push(Uop::Add(rd, rs1, rs2));
                seq
            }
            Sub => {
                uops.push(Uop::Sub(rd, rs1, rs2));
                seq
            }
            Mul => {
                uops.push(Uop::Mul(rd, rs1, rs2));
                seq
            }
            And => {
                uops.push(Uop::And(rd, rs1, rs2));
                seq
            }
            Or => {
                uops.push(Uop::Or(rd, rs1, rs2));
                seq
            }
            Xor => {
                uops.push(Uop::Xor(rd, rs1, rs2));
                seq
            }
            Sll => {
                uops.push(Uop::Sll(rd, rs1, rs2));
                seq
            }
            Srl => {
                uops.push(Uop::Srl(rd, rs1, rs2));
                seq
            }
            Sra => {
                uops.push(Uop::Sra(rd, rs1, rs2));
                seq
            }
            Slt => {
                uops.push(Uop::Slt(rd, rs1, rs2));
                seq
            }
            Sltu => {
                uops.push(Uop::Sltu(rd, rs1, rs2));
                seq
            }
            Addi => {
                uops.push(Uop::Addi(rd, rs1, imm));
                seq
            }
            Andi => {
                uops.push(Uop::Andi(rd, rs1, imm));
                seq
            }
            Ori => {
                uops.push(Uop::Ori(rd, rs1, imm));
                seq
            }
            Xori => {
                uops.push(Uop::Xori(rd, rs1, imm));
                seq
            }
            Slli => {
                uops.push(Uop::Slli(rd, rs1, imm));
                seq
            }
            Srli => {
                uops.push(Uop::Srli(rd, rs1, imm));
                seq
            }
            Srai => {
                uops.push(Uop::Srai(rd, rs1, imm));
                seq
            }
            Slti => {
                uops.push(Uop::Slti(rd, rs1, imm));
                seq
            }
            Li => {
                uops.push(Uop::Li(rd, imm));
                seq
            }
            Ld => {
                uops.push(Uop::Load(rd, rs1, imm));
                seq
            }
            St => {
                uops.push(Uop::Store(rs1, rs2, imm));
                seq
            }
            Nop => {
                uops.push(Uop::Nop);
                seq
            }
            Div | Rem | Fadd | Fsub | Fmul | Fdiv | Flt | Cvtif | Cvtfi => {
                uops.push(Uop::Exotic {
                    op: inst.op,
                    rd,
                    rs1,
                    rs2,
                    imm,
                });
                seq
            }
        };
        insts.push(inst);
        pcs.push(pc);
        pc = next;
    };
    // Every break leaves `pc` at the terminator slot: the terminating
    // instruction, the Fall continuation point, or the bad address.
    pcs.push(pc);
    let (uops, ends) = fuse(uops);
    DecodedBlock {
        entry,
        uops,
        insts,
        pcs,
        ends,
        term,
    }
}

/// Whether `imm` survives an `i16` round trip (fused uops carry
/// immediates compactly so [`Uop`] stays 16 bytes).
fn fits_i16(imm: i64) -> bool {
    imm as i16 as i64 == imm
}

/// The fused `addi`+branch uop for `(Addi(rd, rs, k), br)`, if `br` is a
/// branch uop and the compact fields fit.
fn fuse_addi_branch(rd: Reg, rs: Reg, k: i64, br: Uop) -> Option<Uop> {
    use Uop::*;
    if !fits_i16(k) {
        return None;
    }
    let k = k as i16;
    let (a, b, exit, assume) = match br {
        BrEq { a, b, exit, assume }
        | BrNe { a, b, exit, assume }
        | BrLt { a, b, exit, assume }
        | BrGe { a, b, exit, assume }
        | BrLtu { a, b, exit, assume }
        | BrGeu { a, b, exit, assume } => (a, b, u32::try_from(exit).ok()?, assume),
        _ => return None,
    };
    Some(match br {
        BrEq { .. } => AddiBrEq {
            rd,
            rs,
            k,
            a,
            b,
            exit,
            assume,
        },
        BrNe { .. } => AddiBrNe {
            rd,
            rs,
            k,
            a,
            b,
            exit,
            assume,
        },
        BrLt { .. } => AddiBrLt {
            rd,
            rs,
            k,
            a,
            b,
            exit,
            assume,
        },
        BrGe { .. } => AddiBrGe {
            rd,
            rs,
            k,
            a,
            b,
            exit,
            assume,
        },
        BrLtu { .. } => AddiBrLtu {
            rd,
            rs,
            k,
            a,
            b,
            exit,
            assume,
        },
        _ => AddiBrGeu {
            rd,
            rs,
            k,
            a,
            b,
            exit,
            assume,
        },
    })
}

/// Peephole pair fusion over a freshly decoded (one uop per
/// instruction) body: merges the dependent pairs steady loops are made
/// of — `addi`+`st` and `addi`+branch (pointer-bump-then-store,
/// bump-counter-then-loop), `mul`+`add` (row-major index computation)
/// and `add`+`ld`/`st` (base+index addressing) — into single
/// two-instruction uops. Returns the fused body and its `ends` map
/// (cumulative instruction count per uop). Fusion only coarsens
/// dispatch; the instruction-indexed `insts`/`pcs` replay arrays are
/// untouched, so observed and budget-limited replays never see a fused
/// pair.
fn fuse(raw: Vec<Uop>) -> (Vec<Uop>, Vec<u32>) {
    use Uop::*;
    let mut uops = Vec::with_capacity(raw.len());
    let mut ends = Vec::with_capacity(raw.len());
    let mut i = 0;
    while i < raw.len() {
        let pair = match (raw[i], raw.get(i + 1)) {
            (Addi(rd, rs, k), Some(&Store(base, src, off))) if fits_i16(k) && fits_i16(off) => {
                let (k, off) = (k as i16, off as i16);
                Some(AddiStore {
                    rd,
                    rs,
                    k,
                    base,
                    src,
                    off,
                })
            }
            (Addi(rd, rs, k), Some(&br)) => fuse_addi_branch(rd, rs, k, br),
            (Mul(rd1, a, b), Some(&Add(rd2, c, d))) => Some(MulAdd {
                rd1,
                a,
                b,
                rd2,
                c,
                d,
            }),
            (Add(rd1, a, b), Some(&Load(rd2, rs, off))) if fits_i16(off) => {
                let off = off as i16;
                Some(AddLoad {
                    rd1,
                    a,
                    b,
                    rd2,
                    rs,
                    off,
                })
            }
            (Add(rd1, a, b), Some(&Store(base, src, off))) if fits_i16(off) => {
                let off = off as i16;
                Some(AddStore {
                    rd1,
                    a,
                    b,
                    base,
                    src,
                    off,
                })
            }
            _ => None,
        };
        if let Some(u) = pair {
            uops.push(u);
            i += 2;
        } else {
            uops.push(raw[i]);
            i += 1;
        }
        ends.push(i as u32);
    }
    (uops, ends)
}

/// Executes `block`'s trace body against `st`/`mem` — the silent
/// fast-forward inner loop: one jump-table dispatch per uop (which,
/// after pair fusion, is often two instructions), arithmetic inlined
/// per variant.
///
/// Returns `(instructions_retired, exited)`. While execution stays on
/// the predicted path the PC is *not* advanced per uop; a branch uop
/// that goes against its prediction sets `st.pc` to the true successor
/// and returns with `exited = true` (a fused `addi`+branch retires both
/// of its instructions before exiting). When the whole body runs
/// (`exited = false`) the caller owns the PC — set it to the stop point
/// or execute the terminator. Register and memory effects are exactly
/// [`crate::exec_inst`]'s for the same instruction path (each arm
/// mirrors the corresponding [`eval_alu`] arm).
#[inline]
pub fn exec_uops(block: &DecodedBlock, st: &mut ArchState, mem: &mut impl DataMem) -> (u64, bool) {
    use Uop::*;
    for (i, u) in block.uops.iter().enumerate() {
        match *u {
            Add(rd, a, b) => st.set_reg(rd, st.reg(a).wrapping_add(st.reg(b))),
            Sub(rd, a, b) => st.set_reg(rd, st.reg(a).wrapping_sub(st.reg(b))),
            Mul(rd, a, b) => st.set_reg(rd, st.reg(a).wrapping_mul(st.reg(b))),
            And(rd, a, b) => st.set_reg(rd, st.reg(a) & st.reg(b)),
            Or(rd, a, b) => st.set_reg(rd, st.reg(a) | st.reg(b)),
            Xor(rd, a, b) => st.set_reg(rd, st.reg(a) ^ st.reg(b)),
            Sll(rd, a, b) => st.set_reg(rd, st.reg(a) << (st.reg(b) & 63)),
            Srl(rd, a, b) => st.set_reg(rd, st.reg(a) >> (st.reg(b) & 63)),
            Sra(rd, a, b) => st.set_reg(rd, ((st.reg(a) as i64) >> (st.reg(b) & 63)) as u64),
            Slt(rd, a, b) => st.set_reg(rd, ((st.reg(a) as i64) < (st.reg(b) as i64)) as u64),
            Sltu(rd, a, b) => st.set_reg(rd, (st.reg(a) < st.reg(b)) as u64),
            Addi(rd, a, imm) => st.set_reg(rd, st.reg(a).wrapping_add(imm as u64)),
            Andi(rd, a, imm) => st.set_reg(rd, st.reg(a) & imm as u64),
            Ori(rd, a, imm) => st.set_reg(rd, st.reg(a) | imm as u64),
            Xori(rd, a, imm) => st.set_reg(rd, st.reg(a) ^ imm as u64),
            Slli(rd, a, imm) => st.set_reg(rd, st.reg(a) << (imm as u64 & 63)),
            Srli(rd, a, imm) => st.set_reg(rd, st.reg(a) >> (imm as u64 & 63)),
            Srai(rd, a, imm) => st.set_reg(rd, ((st.reg(a) as i64) >> (imm as u64 & 63)) as u64),
            Slti(rd, a, imm) => st.set_reg(rd, ((st.reg(a) as i64) < imm) as u64),
            Li(rd, imm) => st.set_reg(rd, imm as u64),
            Load(rd, a, imm) => {
                let addr = st.reg(a).wrapping_add(imm as u64) & !7;
                let val = mem.load(addr);
                st.set_reg(rd, val);
            }
            Store(a, v, imm) => {
                let addr = st.reg(a).wrapping_add(imm as u64) & !7;
                mem.store(addr, st.reg(v));
            }
            Nop => {}
            BrEq { a, b, exit, assume } => {
                if (st.reg(a) == st.reg(b)) != assume {
                    st.pc = exit;
                    return (block.ends[i] as u64, true);
                }
            }
            BrNe { a, b, exit, assume } => {
                if (st.reg(a) != st.reg(b)) != assume {
                    st.pc = exit;
                    return (block.ends[i] as u64, true);
                }
            }
            BrLt { a, b, exit, assume } => {
                if ((st.reg(a) as i64) < (st.reg(b) as i64)) != assume {
                    st.pc = exit;
                    return (block.ends[i] as u64, true);
                }
            }
            BrGe { a, b, exit, assume } => {
                if ((st.reg(a) as i64) >= (st.reg(b) as i64)) != assume {
                    st.pc = exit;
                    return (block.ends[i] as u64, true);
                }
            }
            BrLtu { a, b, exit, assume } => {
                if (st.reg(a) < st.reg(b)) != assume {
                    st.pc = exit;
                    return (block.ends[i] as u64, true);
                }
            }
            BrGeu { a, b, exit, assume } => {
                if (st.reg(a) >= st.reg(b)) != assume {
                    st.pc = exit;
                    return (block.ends[i] as u64, true);
                }
            }
            AddiStore {
                rd,
                rs,
                k,
                base,
                src,
                off,
            } => {
                st.set_reg(rd, st.reg(rs).wrapping_add(k as i64 as u64));
                let addr = st.reg(base).wrapping_add(off as i64 as u64) & !7;
                mem.store(addr, st.reg(src));
            }
            AddiBrEq {
                rd,
                rs,
                k,
                a,
                b,
                exit,
                assume,
            } => {
                st.set_reg(rd, st.reg(rs).wrapping_add(k as i64 as u64));
                if (st.reg(a) == st.reg(b)) != assume {
                    st.pc = exit as u64;
                    return (block.ends[i] as u64, true);
                }
            }
            AddiBrNe {
                rd,
                rs,
                k,
                a,
                b,
                exit,
                assume,
            } => {
                st.set_reg(rd, st.reg(rs).wrapping_add(k as i64 as u64));
                if (st.reg(a) != st.reg(b)) != assume {
                    st.pc = exit as u64;
                    return (block.ends[i] as u64, true);
                }
            }
            AddiBrLt {
                rd,
                rs,
                k,
                a,
                b,
                exit,
                assume,
            } => {
                st.set_reg(rd, st.reg(rs).wrapping_add(k as i64 as u64));
                if ((st.reg(a) as i64) < (st.reg(b) as i64)) != assume {
                    st.pc = exit as u64;
                    return (block.ends[i] as u64, true);
                }
            }
            AddiBrGe {
                rd,
                rs,
                k,
                a,
                b,
                exit,
                assume,
            } => {
                st.set_reg(rd, st.reg(rs).wrapping_add(k as i64 as u64));
                if ((st.reg(a) as i64) >= (st.reg(b) as i64)) != assume {
                    st.pc = exit as u64;
                    return (block.ends[i] as u64, true);
                }
            }
            AddiBrLtu {
                rd,
                rs,
                k,
                a,
                b,
                exit,
                assume,
            } => {
                st.set_reg(rd, st.reg(rs).wrapping_add(k as i64 as u64));
                if (st.reg(a) < st.reg(b)) != assume {
                    st.pc = exit as u64;
                    return (block.ends[i] as u64, true);
                }
            }
            AddiBrGeu {
                rd,
                rs,
                k,
                a,
                b,
                exit,
                assume,
            } => {
                st.set_reg(rd, st.reg(rs).wrapping_add(k as i64 as u64));
                if (st.reg(a) >= st.reg(b)) != assume {
                    st.pc = exit as u64;
                    return (block.ends[i] as u64, true);
                }
            }
            MulAdd {
                rd1,
                a,
                b,
                rd2,
                c,
                d,
            } => {
                st.set_reg(rd1, st.reg(a).wrapping_mul(st.reg(b)));
                st.set_reg(rd2, st.reg(c).wrapping_add(st.reg(d)));
            }
            AddLoad {
                rd1,
                a,
                b,
                rd2,
                rs,
                off,
            } => {
                st.set_reg(rd1, st.reg(a).wrapping_add(st.reg(b)));
                let addr = st.reg(rs).wrapping_add(off as i64 as u64) & !7;
                let val = mem.load(addr);
                st.set_reg(rd2, val);
            }
            AddStore {
                rd1,
                a,
                b,
                base,
                src,
                off,
            } => {
                st.set_reg(rd1, st.reg(a).wrapping_add(st.reg(b)));
                let addr = st.reg(base).wrapping_add(off as i64 as u64) & !7;
                mem.store(addr, st.reg(src));
            }
            Exotic {
                op,
                rd,
                rs1,
                rs2,
                imm,
            } => {
                let val = eval_alu(op, st.reg(rs1), st.reg(rs2), imm);
                st.set_reg(rd, val);
            }
        }
    }
    (block.insts.len() as u64, false)
}

/// Ways in the [`BlockCache`]'s direct-mapped recent-trace table. Must
/// be a power of two; sized to cover every trace of a hot loop nest so
/// steady-state dispatch never touches the hash map.
const RECENT_WAYS: usize = 128;

/// Recent-table tag for "empty" (PCs are 4-byte aligned and far below
/// `u64::MAX`).
const NO_PC: u64 = u64::MAX;

/// Consecutive side-exits at one branch site before [`BlockCache::run`]
/// pins that branch's predicted direction to the observed one and marks
/// resident traces for re-decode. High enough that decode churn stays
/// negligible, low enough that a mispredicted hot loop heals within its
/// first hundred iterations.
const FLIP_AFTER: u32 = 64;

/// A demand-filled map from entry PC to [`DecodedBlock`]. Code cannot be
/// written in this ISA, so decoded traces are never invalidated by
/// execution; overlapping traces from distinct entry PCs into the same
/// region simply coexist. Traces *are* re-decoded — lazily, in place —
/// when exit-driven learning (see [`run`](Self::run)) changes a branch's
/// predicted direction; predictions only steer decode, never
/// architectural results.
///
/// Traces live in an append-only arena; a direct-mapped recent table in
/// front of the PC→slot hash map makes steady-state dispatch (hot loops
/// re-entering the same few traces) a one-compare lookup.
#[derive(Debug)]
pub struct BlockCache {
    recent: [(u64, u32); RECENT_WAYS],
    map: FxHashMap<u64, u32>,
    arena: Vec<DecodedBlock>,
    /// `gens[slot]` is the value of `gen` when `arena[slot]` was last
    /// decoded; a mismatch means prediction hints changed since and the
    /// trace re-decodes on its next dispatch. (A stale trace is still
    /// architecturally exact — staleness only costs exits.)
    gens: Vec<u32>,
    gen: u32,
    /// Learned branch directions, by branch PC: decode-time overrides
    /// for the static backward-taken/forward-not-taken heuristic.
    hints: FxHashMap<u64, bool>,
    /// Branch PC of the current consecutive-exit run, and its length.
    exit_run_pc: u64,
    exit_run: u32,
    // Demand-decode accounting, bumped only off the one-compare hit
    // path (see `miss`). Telemetry-only; surfaced via `stats`.
    map_probes: u64,
    decodes: u64,
}

/// Demand-decode statistics for a [`BlockCache`]: how often dispatch
/// fell through the direct-mapped recent table to the PC→slot map, and
/// how many traces were decoded or re-decoded (prediction-hint
/// staleness included). Telemetry-only — never feeds report bytes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BlockCacheStats {
    /// Recent-table misses that consulted the PC→slot hash map.
    pub map_probes: u64,
    /// Traces decoded or re-decoded into the arena.
    pub decodes: u64,
}

impl Default for BlockCache {
    fn default() -> Self {
        Self {
            recent: [(NO_PC, 0); RECENT_WAYS],
            map: FxHashMap::default(),
            arena: Vec::new(),
            gens: Vec::new(),
            gen: 0,
            hints: FxHashMap::default(),
            exit_run_pc: NO_PC,
            exit_run: 0,
            map_probes: 0,
            decodes: 0,
        }
    }
}

impl BlockCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Arena slot of the trace entered at `pc`, decoding (or
    /// re-decoding, after a prediction change) on demand.
    #[inline]
    fn slot_for(&mut self, prog: &Program, pc: u64) -> usize {
        let way = ((pc >> 2) as usize) & (RECENT_WAYS - 1);
        let (tag, slot) = self.recent[way];
        if tag == pc && self.gens[slot as usize] == self.gen {
            return slot as usize;
        }
        self.miss(prog, pc, way)
    }

    /// Recent-table miss: consult the hash map, decoding on first use
    /// (or re-decoding a trace made stale by new prediction hints), and
    /// refill the way.
    fn miss(&mut self, prog: &Program, pc: u64, way: usize) -> usize {
        self.map_probes += 1;
        let slot = match self.map.get(&pc) {
            Some(&slot) => {
                if self.gens[slot as usize] != self.gen {
                    let b = decode_block_hinted(prog, pc, &self.hints);
                    self.arena[slot as usize] = b;
                    self.gens[slot as usize] = self.gen;
                    self.decodes += 1;
                }
                slot
            }
            None => {
                let slot = u32::try_from(self.arena.len()).expect("block arena overflow");
                self.arena.push(decode_block_hinted(prog, pc, &self.hints));
                self.gens.push(self.gen);
                self.map.insert(pc, slot);
                self.decodes += 1;
                slot
            }
        };
        self.recent[way] = (pc, slot);
        slot as usize
    }

    /// Demand-decode accounting since construction.
    pub fn stats(&self) -> BlockCacheStats {
        BlockCacheStats {
            map_probes: self.map_probes,
            decodes: self.decodes,
        }
    }

    /// The trace entered at `pc`, decoding it on first use.
    #[inline]
    pub fn get_or_decode(&mut self, prog: &Program, pc: u64) -> &DecodedBlock {
        let slot = self.slot_for(prog, pc);
        &self.arena[slot]
    }

    /// The silent fast-forward engine: dispatches whole traces from
    /// `st.pc` until `budget` instructions have retired or the program
    /// halts (or leaves the code segment). Returns
    /// `(instructions_retired, halted)`.
    ///
    /// Per dispatch this is one recent-table probe and one [`exec_uops`]
    /// call; terminators retire through [`exec_inst`], and a budget
    /// expiring inside a trace replays instruction-by-instruction
    /// through [`exec_inst`] so the stop point is exactly the
    /// interpreter's. Side-exits feed a learner: a run of
    /// consecutive exits at one branch site flips that branch's
    /// prediction hint and lazily re-decode resident traces, so a
    /// statically mispredicted hot loop (a biased always-taken forward
    /// branch, say) heals into a fully unrolled trace instead of
    /// exiting every iteration.
    pub fn run(
        &mut self,
        prog: &Program,
        st: &mut ArchState,
        mem: &mut impl DataMem,
        budget: u64,
    ) -> (u64, bool) {
        let mut remaining = budget;
        let mut halted = false;
        while remaining > 0 {
            let slot = self.slot_for(prog, st.pc);
            let block = &self.arena[slot];
            let body = block.insts.len() as u64;
            let term = block.term;
            if remaining <= body {
                // The budget expires inside the trace body: replay
                // through exec_inst (which advances the PC itself) until
                // it runs out or a branch leaves the trace. Every
                // replayed instruction retires.
                let take = remaining as usize;
                let mut done = 0u64;
                for i in 0..take {
                    exec_inst(block.insts[i], st, mem);
                    done += 1;
                    if st.pc != block.pcs[i + 1] {
                        break; // trace exit: re-dispatch at the new PC
                    }
                }
                remaining -= done;
                continue;
            }
            let (done, exited) = exec_uops(block, st, mem);
            remaining -= done;
            if exited {
                // The branch uop already set the PC.
                self.learn_exit(slot, done as usize, st.pc);
                continue;
            }
            match term {
                Terminator::Inst { inst, pc } => {
                    st.pc = pc;
                    let out = exec_inst(inst, st, mem);
                    remaining -= 1;
                    if out.halted {
                        halted = true;
                        break;
                    }
                }
                Terminator::Fall { next } => st.pc = next,
                Terminator::OutOfRange { pc } => {
                    // Halt without retiring, PC parked on the bad
                    // address — the interpreter's PcOutOfRange path.
                    st.pc = pc;
                    halted = true;
                    break;
                }
            }
        }
        (budget - remaining, halted)
    }

    /// Records a side-exit from trace `slot` after `done` retired body
    /// instructions (the last of which is the mispredicted branch, for
    /// fused and unfused branch uops alike), with `exit_pc` the PC the
    /// exit transferred to. After [`FLIP_AFTER`] consecutive exits at
    /// the same branch site, pins that branch's prediction to the
    /// observed direction and bumps the generation so resident traces
    /// re-decode on next dispatch.
    fn learn_exit(&mut self, slot: usize, done: usize, exit_pc: u64) {
        let block = &self.arena[slot];
        let bpc = block.pcs[done - 1];
        if self.exit_run_pc != bpc {
            self.exit_run_pc = bpc;
            self.exit_run = 1;
            return;
        }
        self.exit_run += 1;
        if self.exit_run < FLIP_AFTER {
            return;
        }
        // The trace kept predicting one way; execution kept going the
        // other. The exit edge is the branch's target exactly when the
        // observed (non-predicted) direction is taken.
        let inst = block.insts[done - 1];
        debug_assert!(
            matches!(
                inst.op,
                Op::Beq | Op::Bne | Op::Blt | Op::Bge | Op::Bltu | Op::Bgeu
            ),
            "side exits only come from branch uops"
        );
        self.hints.insert(bpc, exit_pc == inst.imm as u64);
        self.gen = self.gen.wrapping_add(1);
        self.exit_run_pc = NO_PC;
        self.exit_run = 0;
    }

    /// Number of decoded traces resident.
    pub fn len(&self) -> usize {
        self.arena.len()
    }

    /// Whether no trace has been decoded yet.
    pub fn is_empty(&self) -> bool {
        self.arena.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;
    use crate::exec::{step, VecMem};
    use crate::program::CODE_BASE;

    /// li / add / ld / st / nop straight line, then a backward branch.
    fn loop_program() -> Program {
        let mut a = Asm::new();
        let (i, n, acc) = (Reg::int(10), Reg::int(11), Reg::int(12));
        a.li(i, 0);
        a.li(n, 8);
        a.label("loop");
        a.addi(acc, acc, 3);
        a.nop();
        a.st(acc, Reg::int(13), 0x100);
        a.ld(Reg::int(14), Reg::int(13), 0x100);
        a.addi(i, i, 1);
        a.blt(i, n, "loop");
        a.halt();
        a.finish().unwrap()
    }

    #[test]
    fn decode_unrolls_backward_branches_and_stops_at_halt() {
        let p = loop_program();
        let head = decode_block(&p, p.entry());
        // The backward blt is predicted taken, so the 6-instruction loop
        // body unrolls until the uop cap.
        assert_eq!(head.len(), MAX_BLOCK_UOPS);
        assert!(matches!(head.term(), Terminator::Fall { .. }));
        // One branch per unrolled iteration — fused with the preceding
        // counter `addi` — predicted taken, exiting to the fall-through
        // halt.
        let halt_pc = CODE_BASE + 8 * INST_BYTES;
        let branches: Vec<_> = head
            .uops()
            .iter()
            .filter(|u| matches!(u, Uop::AddiBrLt { .. }))
            .collect();
        assert!(branches.len() > 10, "the loop must unroll");
        assert!(branches.iter().all(|u| matches!(
            u,
            Uop::AddiBrLt { assume: true, exit, .. } if u64::from(*exit) == halt_pc
        )));
        // PCs wrap around the loop: instruction 2 + 6 is the loop head
        // again, one instruction past the backward branch's slot.
        assert_eq!(head.pc_at(2), CODE_BASE + 2 * INST_BYTES);
        assert_eq!(head.pc_at(2 + 6), CODE_BASE + 2 * INST_BYTES);
        // Entering at the halt is a zero-uop trace.
        let halt = decode_block(&p, halt_pc);
        assert!(halt.is_empty());
        assert_eq!(halt.pc_at(0), halt_pc);
        assert!(matches!(
            halt.term(),
            Terminator::Inst { inst, .. } if inst.op == Op::Halt
        ));
    }

    #[test]
    fn decode_follows_forward_branches_not_taken_and_direct_jumps() {
        let mut a = Asm::new();
        let (i, n) = (Reg::int(10), Reg::int(11));
        a.blt(i, n, "skip"); // forward: predicted not-taken
        a.addi(i, i, 1);
        a.j("join"); // direct jump: followed
        a.label("skip");
        a.addi(i, i, 2);
        a.label("join");
        a.halt();
        let p = a.finish().unwrap();
        let b = decode_block(&p, p.entry());
        // Path: branch (not-taken), addi, j — landing on halt. The
        // skipped `addi i, 2` is not on the trace.
        assert_eq!(b.len(), 3);
        let skip_pc = CODE_BASE + 3 * INST_BYTES;
        assert!(matches!(
            b.uops()[0],
            Uop::BrLt { assume: false, exit, .. } if exit == skip_pc
        ));
        assert!(matches!(b.uops()[1], Uop::Addi(..)));
        assert!(
            matches!(b.uops()[2], Uop::Nop),
            "a plain jump decodes to a followed Nop"
        );
        // The jump is followed: the terminator is the halt at `join`.
        let join_pc = CODE_BASE + 4 * INST_BYTES;
        assert!(matches!(
            b.term(),
            Terminator::Inst { inst, pc } if inst.op == Op::Halt && pc == join_pc
        ));
        assert_eq!(b.pc_at(3), join_pc);
    }

    #[test]
    fn decode_stops_at_code_segment_boundary() {
        let mut a = Asm::new();
        a.nop();
        a.nop();
        let p = a.finish().unwrap();
        let b = decode_block(&p, p.entry());
        assert_eq!(b.len(), 2, "both nops belong to the body");
        assert_eq!(
            b.term(),
            Terminator::OutOfRange {
                pc: CODE_BASE + 2 * INST_BYTES
            }
        );
        // An entry PC outside the segment is an empty out-of-range trace.
        let oob = decode_block(&p, 0xDEAD_0000);
        assert!(oob.is_empty());
        assert_eq!(oob.term(), Terminator::OutOfRange { pc: 0xDEAD_0000 });
    }

    #[test]
    fn overlong_straight_line_falls_through() {
        let mut a = Asm::new();
        for _ in 0..(MAX_BLOCK_UOPS + 10) {
            a.addi(Reg::int(10), Reg::int(10), 1);
        }
        a.halt();
        let p = a.finish().unwrap();
        let b = decode_block(&p, p.entry());
        assert_eq!(b.len(), MAX_BLOCK_UOPS);
        let Terminator::Fall { next } = b.term() else {
            panic!("expected fall terminator, got {:?}", b.term());
        };
        assert_eq!(next, CODE_BASE + MAX_BLOCK_UOPS as u64 * INST_BYTES);
        assert_eq!(b.pc_at(b.len()), next);
        let tail = decode_block(&p, next);
        assert_eq!(tail.len(), 10);
        assert!(matches!(
            tail.term(),
            Terminator::Inst { inst, .. } if inst.op == Op::Halt
        ));
    }

    #[test]
    fn exec_uops_matches_single_stepping_through_the_exit() {
        let p = loop_program();
        let b = decode_block(&p, p.entry());
        // Trace path: the 8-iteration loop unrolls further than the
        // program actually iterates, so execution exits at the 9th
        // unrolled branch.
        let mut st = ArchState::new(p.entry());
        let mut mem = VecMem::new();
        let (done, exited) = exec_uops(&b, &mut st, &mut mem);
        assert!(exited, "the over-unrolled trace must side-exit");
        assert_eq!(done, 2 + 8 * 6, "setup + 8 full iterations");
        // Reference: step the interpreter the same number of times.
        let mut st_ref = ArchState::new(p.entry());
        let mut mem_ref = VecMem::new();
        for _ in 0..done {
            step(&p, &mut st_ref, &mut mem_ref).unwrap();
        }
        assert_eq!(st, st_ref, "registers and exit PC match the interpreter");
        assert_eq!(mem.load(0x100), mem_ref.load(0x100));
    }

    #[test]
    fn block_cache_decodes_once_per_entry() {
        let p = loop_program();
        let mut cache = BlockCache::new();
        assert!(cache.is_empty());
        let first = cache.get_or_decode(&p, p.entry()).clone();
        assert_eq!(cache.len(), 1);
        let again = cache.get_or_decode(&p, p.entry()).clone();
        assert_eq!(cache.len(), 1, "same entry must not re-decode");
        assert_eq!(first, again);
        cache.get_or_decode(&p, CODE_BASE + 2 * INST_BYTES);
        assert_eq!(cache.len(), 2, "overlapping entries coexist");
    }

    /// The dispatch loop's speed rests on uops staying two per cache
    /// line; a variant that grows the enum past 16 bytes is a silent
    /// regression everywhere.
    #[test]
    fn uop_stays_sixteen_bytes() {
        assert!(std::mem::size_of::<Uop>() <= 16);
    }

    #[test]
    fn fusion_coarsens_dispatch_but_not_instruction_accounting() {
        let p = loop_program();
        let b = decode_block(&p, p.entry());
        // Each unrolled iteration fuses its `addi i` + `blt` pair: five
        // uops cover six instructions.
        assert!(b.uops().len() < b.len());
        assert!(b.uops().iter().any(|u| matches!(u, Uop::AddiBrLt { .. })));
        // `ends` is strictly increasing, steps by 1 or 2, and covers
        // every instruction exactly once.
        let mut prev = 0u32;
        for (u, &e) in b.uops().iter().zip(&b.ends) {
            assert!(e == prev + 1 || e == prev + 2, "bad ends step at {u:?}");
            assert_eq!(
                e,
                prev + if matches!(u, Uop::AddiStore { .. } | Uop::AddiBrLt { .. }) {
                    2
                } else {
                    1
                }
            );
            prev = e;
        }
        assert_eq!(prev as usize, b.len());
    }

    #[test]
    fn fused_store_reading_its_own_add_result_matches_stepping() {
        // `addi p, p, 8` then `st acc, p, 0`: the store's base is the
        // register the fused add just wrote — sequential semantics.
        let mut a = Asm::new();
        let (p_reg, acc) = (Reg::int(10), Reg::int(11));
        a.li(p_reg, 0x100);
        a.li(acc, 0xBEEF);
        a.addi(p_reg, p_reg, 8);
        a.st(acc, p_reg, 0);
        a.halt();
        let p = a.finish().unwrap();
        let b = decode_block(&p, p.entry());
        assert!(b.uops().iter().any(|u| matches!(u, Uop::AddiStore { .. })));
        let mut st = ArchState::new(p.entry());
        let mut mem = VecMem::new();
        let (done, exited) = exec_uops(&b, &mut st, &mut mem);
        assert_eq!((done, exited), (4, false));
        let mut st_ref = ArchState::new(p.entry());
        let mut mem_ref = VecMem::new();
        for _ in 0..done {
            step(&p, &mut st_ref, &mut mem_ref).unwrap();
        }
        st.pc = st_ref.pc; // exec_uops leaves the PC to its caller
        assert_eq!(st, st_ref);
        assert_eq!(mem.load(0x108), 0xBEEF);
        assert_eq!(mem_ref.load(0x108), 0xBEEF);
    }

    #[test]
    fn wide_immediates_stay_unfused() {
        let mut a = Asm::new();
        let (x, base) = (Reg::int(10), Reg::int(11));
        // Offset and increment beyond i16: the pairs must keep their
        // exact unfused uops.
        a.addi(x, x, 0x2_0000);
        a.st(x, base, 0x1_0000);
        a.addi(x, x, 1);
        a.st(x, base, 0x1_0000);
        a.halt();
        let p = a.finish().unwrap();
        let b = decode_block(&p, p.entry());
        assert_eq!(b.uops().len(), 4, "nothing fuses across wide imms");
        assert!(matches!(b.uops()[0], Uop::Addi(_, _, 0x2_0000)));
        assert!(matches!(b.uops()[1], Uop::Store(_, _, 0x1_0000)));
        assert!(matches!(b.uops()[2], Uop::Addi(_, _, 1)));
        assert!(matches!(b.uops()[3], Uop::Store(_, _, 0x1_0000)));
    }
}
