//! Architectural checkpoints: a resumable snapshot of register file,
//! program counter, instruction count, and a copy-on-write memory delta
//! against the pristine [`Program`](crate::Program) image.
//!
//! A checkpoint deliberately carries *only* the pages written since the
//! image was loaded, so k checkpoints over one workload cost k deltas,
//! not k full memories. Restoring is "load the image, then overlay the
//! delta" — see [`ArchCheckpoint::apply_to`].
//!
//! The type lives in `r3dla-isa` (below every simulator crate) so both
//! the functional emulator that *captures* checkpoints and the timing
//! systems that *restore* them can name it without dependency cycles.

use crate::exec::VecMem;
use crate::inst::Reg;

/// Words per 4 KiB page (the granularity [`VecMem`] and the emulator's
/// copy-on-write memory share).
pub const PAGE_WORDS: usize = 512;

/// One 4 KiB page of 64-bit words.
pub type Page = [u64; PAGE_WORDS];

/// A resumable architectural snapshot: registers, PC, retired-instruction
/// count, and the dirty-page delta against the pristine program image.
///
/// Plain data (`Send + Sync`): checkpoints are captured once on the
/// planning thread and fanned out read-only across measurement workers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArchCheckpoint {
    regs: [u64; Reg::COUNT],
    pc: u64,
    icount: u64,
    halted: bool,
    /// Dirty pages, sorted by page index for deterministic iteration.
    pages: Vec<(u64, Box<Page>)>,
}

impl ArchCheckpoint {
    /// Builds a checkpoint from raw parts. `pages` are `(page_index,
    /// contents)` pairs (`page_index = addr >> 12`); they are sorted here
    /// so equality and application order are canonical.
    ///
    /// `halted` records whether execution had already halted when the
    /// snapshot was taken. It must be carried explicitly: after a `halt`
    /// the PC points at the *next* instruction slot, which may be a
    /// perfectly valid instruction, so halt state cannot be re-derived
    /// from the PC on restore.
    pub fn new(
        regs: [u64; Reg::COUNT],
        pc: u64,
        icount: u64,
        halted: bool,
        mut pages: Vec<(u64, Box<Page>)>,
    ) -> Self {
        pages.sort_unstable_by_key(|&(p, _)| p);
        Self {
            regs,
            pc,
            icount,
            halted,
            pages,
        }
    }

    /// The architectural register file at the checkpoint.
    pub fn regs(&self) -> [u64; Reg::COUNT] {
        self.regs
    }

    /// The PC of the next instruction to execute.
    pub fn pc(&self) -> u64 {
        self.pc
    }

    /// Instructions retired before this checkpoint.
    pub fn icount(&self) -> u64 {
        self.icount
    }

    /// Whether execution had halted (`halt` retired, or the PC left the
    /// code segment) when this checkpoint was captured. Restored
    /// emulators and systems must treat a halted checkpoint as final
    /// rather than resuming as runnable.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// The dirty-page delta, sorted by page index.
    pub fn pages(&self) -> &[(u64, Box<Page>)] {
        &self.pages
    }

    /// Number of dirty pages the checkpoint carries.
    pub fn dirty_pages(&self) -> usize {
        self.pages.len()
    }

    /// Overlays the delta onto `mem`. The caller must have loaded the
    /// pristine program image first; together that reconstructs the full
    /// architectural memory at the checkpoint.
    pub fn apply_to(&self, mem: &mut VecMem) {
        for (page, data) in &self.pages {
            mem.install_page(*page, data);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::DataMem;

    fn page_with(word: usize, val: u64) -> Box<Page> {
        let mut p = Box::new([0u64; PAGE_WORDS]);
        p[word] = val;
        p
    }

    #[test]
    fn pages_are_canonically_sorted() {
        let a = ArchCheckpoint::new(
            [0; Reg::COUNT],
            0,
            0,
            false,
            vec![(7, page_with(0, 1)), (2, page_with(0, 2))],
        );
        let b = ArchCheckpoint::new(
            [0; Reg::COUNT],
            0,
            0,
            false,
            vec![(2, page_with(0, 2)), (7, page_with(0, 1))],
        );
        assert_eq!(a, b);
        assert_eq!(a.pages()[0].0, 2);
        assert_eq!(a.dirty_pages(), 2);
    }

    #[test]
    fn apply_overlays_delta_on_image() {
        let mut mem = VecMem::new();
        mem.load_image(&[(0x2000_0000, 11), (0x2000_1008, 22)]);
        // Delta rewrites page 0x20001 and adds page 0x20002.
        let ck = ArchCheckpoint::new(
            [0; Reg::COUNT],
            0x40,
            123,
            false,
            vec![
                (0x2000_1008 >> 12, page_with(1, 99)),
                (0x2000_2000 >> 12, page_with(0, 77)),
            ],
        );
        ck.apply_to(&mut mem);
        assert_eq!(mem.load(0x2000_0000), 11, "untouched page survives");
        assert_eq!(mem.load(0x2000_1008), 99, "delta page replaces image page");
        assert_eq!(mem.load(0x2000_2000), 77, "new delta page appears");
        assert_eq!(ck.pc(), 0x40);
        assert_eq!(ck.icount(), 123);
        assert!(!ck.halted());
    }

    #[test]
    fn halt_state_distinguishes_otherwise_equal_checkpoints() {
        let running = ArchCheckpoint::new([0; Reg::COUNT], 0x40, 9, false, Vec::new());
        let halted = ArchCheckpoint::new([0; Reg::COUNT], 0x40, 9, true, Vec::new());
        assert!(halted.halted());
        assert_ne!(
            running, halted,
            "halt state is architectural and must affect equality"
        );
    }
}
