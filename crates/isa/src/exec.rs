//! Functional semantics: architectural state, single-step execution, and
//! the ALU/branch evaluators shared with the timing model.

use crate::hash::FxHashMap;
use crate::inst::{Inst, Op, Reg};
use crate::program::Program;

/// Sentinel page index meaning "last-page cache empty" (real page
/// indices are `addr >> 12`, which never reaches `u64::MAX`).
const NO_PAGE: u64 = u64::MAX;

/// Byte-addressed 64-bit word memory backed by 4 KiB pages.
///
/// Unmapped reads return zero (wrong-path loads may touch arbitrary
/// addresses); writes allocate pages on demand. Accesses are naturally
/// aligned to 8 bytes — lower address bits are masked off.
///
/// Pages live in a flat slot arena indexed through an FxHash page table,
/// and a one-entry last-page cache short-circuits the table for the
/// spatially local access streams the workloads produce — this is the
/// functional-memory hot path under every timing core.
///
/// # Examples
///
/// ```
/// use r3dla_isa::{VecMem, DataMem};
/// let mut m = VecMem::new();
/// m.store(0x2000_0000, 42);
/// assert_eq!(m.load(0x2000_0000), 42);
/// assert_eq!(m.load(0xDEAD_0000), 0); // unmapped
/// ```
#[derive(Debug, Clone)]
pub struct VecMem {
    pages: FxHashMap<u64, u32>,
    storage: Vec<Box<[u64; 512]>>,
    last_page: u64,
    last_slot: u32,
}

impl Default for VecMem {
    fn default() -> Self {
        Self {
            pages: FxHashMap::default(),
            storage: Vec::new(),
            last_page: NO_PAGE,
            last_slot: 0,
        }
    }
}

/// Read/write access to data memory.
pub trait DataMem {
    /// Loads the aligned 64-bit word containing `addr`.
    fn load(&mut self, addr: u64) -> u64;
    /// Stores `val` to the aligned 64-bit word containing `addr`.
    fn store(&mut self, addr: u64, val: u64);
}

impl VecMem {
    /// Creates an empty memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Loads a program's initial data image.
    pub fn load_image(&mut self, image: &[(u64, u64)]) {
        for &(addr, val) in image {
            self.store(addr, val);
        }
    }

    /// Number of resident 4 KiB pages.
    pub fn resident_pages(&self) -> usize {
        self.storage.len()
    }

    /// Installs an entire page (`page = addr >> 12`), replacing any
    /// resident contents — the checkpoint-restore fast path (one copy per
    /// dirty page instead of 512 word stores).
    pub fn install_page(&mut self, page: u64, words: &crate::checkpoint::Page) {
        match self.pages.get(&page) {
            Some(&slot) => self.storage[slot as usize].copy_from_slice(words),
            None => {
                let slot = u32::try_from(self.storage.len()).expect("page arena overflow");
                self.storage.push(Box::new(*words));
                self.pages.insert(page, slot);
            }
        }
    }
}

impl DataMem for VecMem {
    #[inline]
    fn load(&mut self, addr: u64) -> u64 {
        let a = addr & !7;
        let page = a >> 12;
        let word = ((a & 0xFFF) >> 3) as usize;
        if page == self.last_page {
            return self.storage[self.last_slot as usize][word];
        }
        match self.pages.get(&page) {
            Some(&slot) => {
                self.last_page = page;
                self.last_slot = slot;
                self.storage[slot as usize][word]
            }
            None => 0,
        }
    }

    #[inline]
    fn store(&mut self, addr: u64, val: u64) {
        let a = addr & !7;
        let page = a >> 12;
        let word = ((a & 0xFFF) >> 3) as usize;
        if page == self.last_page {
            self.storage[self.last_slot as usize][word] = val;
            return;
        }
        let slot = match self.pages.get(&page) {
            Some(&slot) => slot,
            None => {
                let slot = u32::try_from(self.storage.len()).expect("page arena overflow");
                self.storage.push(Box::new([0u64; 512]));
                self.pages.insert(page, slot);
                slot
            }
        };
        self.last_page = page;
        self.last_slot = slot;
        self.storage[slot as usize][word] = val;
    }
}

/// Architectural register state plus the PC.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArchState {
    regs: [u64; Reg::COUNT],
    /// The current program counter.
    pub pc: u64,
}

impl ArchState {
    /// Creates a fresh state with all registers zero, `sp` at the stack
    /// top, and the PC at `entry`.
    pub fn new(entry: u64) -> Self {
        let mut regs = [0u64; Reg::COUNT];
        regs[Reg::SP.index()] = crate::program::STACK_TOP;
        Self { regs, pc: entry }
    }

    /// Reads a register (`r0` always reads zero).
    #[inline]
    pub fn reg(&self, r: Reg) -> u64 {
        self.regs[r.index()]
    }

    /// Writes a register (writes to `r0` are discarded).
    #[inline]
    pub fn set_reg(&mut self, r: Reg, val: u64) {
        if !r.is_zero() {
            self.regs[r.index()] = val;
        }
    }

    /// A copy of the full register file (used for DLA reboot transfers).
    pub fn regs(&self) -> [u64; Reg::COUNT] {
        self.regs
    }

    /// Overwrites the full register file (used for DLA reboot transfers).
    pub fn set_regs(&mut self, regs: [u64; Reg::COUNT]) {
        self.regs = regs;
        self.regs[Reg::ZERO.index()] = 0;
    }
}

/// Kind of memory access performed by a step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemKind {
    /// A load; the associated value is the loaded word.
    Load,
    /// A store; the associated value is the stored word.
    Store,
}

/// The observable effects of executing one instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepOut {
    /// The instruction executed.
    pub inst: Inst,
    /// Its PC.
    pub pc: u64,
    /// The next PC.
    pub next_pc: u64,
    /// Register write performed, if any.
    pub wrote: Option<(Reg, u64)>,
    /// Memory access performed, if any: kind, address, value.
    pub mem: Option<(MemKind, u64, u64)>,
    /// For conditional branches, whether the branch was taken.
    pub taken: Option<bool>,
    /// Whether the program halted on this step.
    pub halted: bool,
}

/// Errors from functional execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// The PC left the code segment.
    PcOutOfRange(u64),
    /// `run` hit its step limit before the program halted.
    StepLimit(u64),
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::PcOutOfRange(pc) => write!(f, "pc out of range: {pc:#x}"),
            ExecError::StepLimit(n) => write!(f, "step limit of {n} reached before halt"),
        }
    }
}

impl std::error::Error for ExecError {}

/// Evaluates a computational op. `b` is the second register operand; for
/// immediate forms the immediate is used instead of `b`.
#[inline]
pub fn eval_alu(op: Op, a: u64, b: u64, imm: i64) -> u64 {
    use Op::*;
    let immu = imm as u64;
    match op {
        Add => a.wrapping_add(b),
        Sub => a.wrapping_sub(b),
        Mul => a.wrapping_mul(b),
        Div => a.checked_div(b).unwrap_or(u64::MAX),
        Rem => {
            if b == 0 {
                a
            } else {
                a % b
            }
        }
        And => a & b,
        Or => a | b,
        Xor => a ^ b,
        Sll => a << (b & 63),
        Srl => a >> (b & 63),
        Sra => ((a as i64) >> (b & 63)) as u64,
        Slt => ((a as i64) < (b as i64)) as u64,
        Sltu => (a < b) as u64,
        Addi => a.wrapping_add(immu),
        Andi => a & immu,
        Ori => a | immu,
        Xori => a ^ immu,
        Slli => a << (immu & 63),
        Srli => a >> (immu & 63),
        Srai => ((a as i64) >> (immu & 63)) as u64,
        Slti => ((a as i64) < imm) as u64,
        Li => immu,
        Fadd => (f64::from_bits(a) + f64::from_bits(b)).to_bits(),
        Fsub => (f64::from_bits(a) - f64::from_bits(b)).to_bits(),
        Fmul => (f64::from_bits(a) * f64::from_bits(b)).to_bits(),
        Fdiv => (f64::from_bits(a) / f64::from_bits(b)).to_bits(),
        Flt => (f64::from_bits(a) < f64::from_bits(b)) as u64,
        Cvtif => ((a as i64) as f64).to_bits(),
        Cvtfi => {
            let f = f64::from_bits(a);
            if f.is_nan() {
                0
            } else {
                (f as i64) as u64
            }
        }
        _ => 0,
    }
}

/// Evaluates a conditional-branch comparison.
#[inline]
pub fn eval_cond(op: Op, a: u64, b: u64) -> bool {
    use Op::*;
    match op {
        Beq => a == b,
        Bne => a != b,
        Blt => (a as i64) < (b as i64),
        Bge => (a as i64) >= (b as i64),
        Bltu => a < b,
        Bgeu => a >= b,
        _ => false,
    }
}

/// Computes the effective address of a memory instruction given the value
/// of its base register.
#[inline]
pub fn mem_addr(inst: &Inst, rs1_val: u64) -> u64 {
    rs1_val.wrapping_add(inst.imm as u64) & !7
}

/// Executes one instruction, updating state and memory.
///
/// # Errors
///
/// Returns [`ExecError::PcOutOfRange`] when the PC is outside the code
/// segment.
pub fn step(
    prog: &Program,
    st: &mut ArchState,
    mem: &mut impl DataMem,
) -> Result<StepOut, ExecError> {
    let pc = st.pc;
    let inst = prog.fetch(pc).ok_or(ExecError::PcOutOfRange(pc))?;
    Ok(exec_inst(inst, st, mem))
}

/// Executes an already fetched `inst` whose PC is the current `st.pc`,
/// updating state and memory — [`step`] minus the fetch/range check.
///
/// This is the single source of per-instruction semantics: the decoded
/// superblock dispatcher (see [`crate::block`]) replays bodies and
/// terminators through it, which is what makes block-cached execution
/// bit-identical to single stepping.
#[inline]
pub fn exec_inst(inst: Inst, st: &mut ArchState, mem: &mut impl DataMem) -> StepOut {
    let pc = st.pc;
    let seq_pc = pc + crate::program::INST_BYTES;
    let mut out = StepOut {
        inst,
        pc,
        next_pc: seq_pc,
        wrote: None,
        mem: None,
        taken: None,
        halted: false,
    };
    use Op::*;
    match inst.op {
        Nop => {}
        Halt => out.halted = true,
        Ld => {
            let addr = mem_addr(&inst, st.reg(inst.rs1));
            let val = mem.load(addr);
            st.set_reg(inst.rd, val);
            out.wrote = Some((inst.rd, val));
            out.mem = Some((MemKind::Load, addr, val));
        }
        St => {
            let addr = mem_addr(&inst, st.reg(inst.rs1));
            let val = st.reg(inst.rs2);
            mem.store(addr, val);
            out.mem = Some((MemKind::Store, addr, val));
        }
        Beq | Bne | Blt | Bge | Bltu | Bgeu => {
            let taken = eval_cond(inst.op, st.reg(inst.rs1), st.reg(inst.rs2));
            out.taken = Some(taken);
            if taken {
                out.next_pc = inst.imm as u64;
            }
        }
        Jal => {
            if !inst.rd.is_zero() {
                st.set_reg(inst.rd, seq_pc);
                out.wrote = Some((inst.rd, seq_pc));
            }
            out.next_pc = inst.imm as u64;
        }
        Jalr => {
            let target = st.reg(inst.rs1).wrapping_add(inst.imm as u64) & !3;
            if !inst.rd.is_zero() {
                st.set_reg(inst.rd, seq_pc);
                out.wrote = Some((inst.rd, seq_pc));
            }
            out.next_pc = target;
        }
        _ => {
            let a = st.reg(inst.rs1);
            let b = st.reg(inst.rs2);
            let val = eval_alu(inst.op, a, b, inst.imm);
            st.set_reg(inst.rd, val);
            out.wrote = Some((inst.rd, val));
        }
    }
    st.pc = out.next_pc;
    out
}

/// Runs until `Halt` or the step limit; returns the number of instructions
/// executed (including the halt).
///
/// # Errors
///
/// Propagates [`ExecError::PcOutOfRange`]; returns
/// [`ExecError::StepLimit`] when the limit is reached before a halt.
pub fn run(
    prog: &Program,
    st: &mut ArchState,
    mem: &mut impl DataMem,
    max_steps: u64,
) -> Result<u64, ExecError> {
    for n in 0..max_steps {
        let out = step(prog, st, mem)?;
        if out.halted {
            return Ok(n + 1);
        }
    }
    Err(ExecError::StepLimit(max_steps))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;

    #[test]
    fn vecmem_alignment_and_default_zero() {
        let mut m = VecMem::new();
        m.store(0x1003, 5); // misaligned → lands at 0x1000
        assert_eq!(m.load(0x1000), 5);
        assert_eq!(m.load(0x1007), 5);
        assert_eq!(m.load(0x9999_0000), 0);
    }

    #[test]
    fn vecmem_last_page_cache_tracks_page_switches() {
        let mut m = VecMem::new();
        // Interleave two pages so every access flips the cached page.
        for i in 0..64u64 {
            m.store(0x1000 + i * 8, i);
            m.store(0x9000 + i * 8, 1000 + i);
        }
        for i in 0..64u64 {
            assert_eq!(m.load(0x1000 + i * 8), i);
            assert_eq!(m.load(0x9000 + i * 8), 1000 + i);
        }
        assert_eq!(m.resident_pages(), 2);
        // An unmapped read between hits must not poison the cache.
        assert_eq!(m.load(0x4444_0000), 0);
        assert_eq!(m.load(0x1000), 0);
        m.store(0x1000, 9);
        assert_eq!(m.load(0x1000), 9);
    }

    #[test]
    fn vecmem_clone_is_independent() {
        let mut a = VecMem::new();
        a.store(0x2000, 1);
        let mut b = a.clone();
        b.store(0x2000, 2);
        assert_eq!(a.load(0x2000), 1);
        assert_eq!(b.load(0x2000), 2);
    }

    #[test]
    fn r0_is_hardwired_zero() {
        let mut st = ArchState::new(0);
        st.set_reg(Reg::ZERO, 77);
        assert_eq!(st.reg(Reg::ZERO), 0);
        let mut regs = st.regs();
        regs[0] = 5;
        st.set_regs(regs);
        assert_eq!(st.reg(Reg::ZERO), 0);
    }

    #[test]
    fn alu_semantics() {
        use Op::*;
        assert_eq!(eval_alu(Add, 2, 3, 0), 5);
        assert_eq!(eval_alu(Sub, 2, 3, 0), u64::MAX); // wrapping
        assert_eq!(eval_alu(Div, 10, 0, 0), u64::MAX);
        assert_eq!(eval_alu(Rem, 10, 0, 0), 10);
        assert_eq!(eval_alu(Slt, (-1i64) as u64, 0, 0), 1);
        assert_eq!(eval_alu(Sltu, (-1i64) as u64, 0, 0), 0);
        assert_eq!(eval_alu(Srai, (-8i64) as u64, 0, 1), (-4i64) as u64);
        assert_eq!(eval_alu(Li, 0, 0, -7), (-7i64) as u64);
        let two = 2.0f64.to_bits();
        let three = 3.0f64.to_bits();
        assert_eq!(f64::from_bits(eval_alu(Fmul, two, three, 0)), 6.0);
        assert_eq!(eval_alu(Flt, two, three, 0), 1);
        assert_eq!(eval_alu(Cvtfi, 2.9f64.to_bits(), 0, 0), 2);
        assert_eq!(eval_alu(Cvtfi, f64::NAN.to_bits(), 0, 0), 0);
    }

    #[test]
    fn cond_semantics() {
        use Op::*;
        assert!(eval_cond(Beq, 4, 4));
        assert!(eval_cond(Bne, 4, 5));
        assert!(eval_cond(Blt, (-1i64) as u64, 0));
        assert!(!eval_cond(Bltu, (-1i64) as u64, 0));
        assert!(eval_cond(Bge, 0, 0));
        assert!(eval_cond(Bgeu, 1, 0));
    }

    #[test]
    fn step_reports_branch_outcome() {
        let mut a = Asm::new();
        a.label("top");
        a.beq(Reg::ZERO, Reg::ZERO, "top");
        let p = a.finish().unwrap();
        let mut st = ArchState::new(p.entry());
        let mut mem = VecMem::new();
        let out = step(&p, &mut st, &mut mem).unwrap();
        assert_eq!(out.taken, Some(true));
        assert_eq!(out.next_pc, p.entry());
    }

    #[test]
    fn pc_out_of_range_is_error() {
        let mut a = Asm::new();
        a.nop();
        let p = a.finish().unwrap();
        let mut st = ArchState::new(0xFFFF_0000);
        let mut mem = VecMem::new();
        assert!(matches!(
            step(&p, &mut st, &mut mem),
            Err(ExecError::PcOutOfRange(_))
        ));
    }

    #[test]
    fn run_stops_at_halt_and_counts() {
        let mut a = Asm::new();
        a.nop();
        a.nop();
        a.halt();
        let p = a.finish().unwrap();
        let mut st = ArchState::new(p.entry());
        let mut mem = VecMem::new();
        assert_eq!(run(&p, &mut st, &mut mem, 100), Ok(3));
    }

    #[test]
    fn run_step_limit() {
        let mut a = Asm::new();
        a.label("spin");
        a.j("spin");
        let p = a.finish().unwrap();
        let mut st = ArchState::new(p.entry());
        let mut mem = VecMem::new();
        assert_eq!(
            run(&p, &mut st, &mut mem, 10),
            Err(ExecError::StepLimit(10))
        );
    }
}
