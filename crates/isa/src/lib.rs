//! A 64-bit RISC instruction set for the R3-DLA simulator.
//!
//! The paper evaluates on Alpha/x86 SPEC binaries under gem5; we substitute
//! a compact RISC ISA of our own so the entire stack — workloads, skeleton
//! generation (binary parsing, backward slicing), and the out-of-order
//! timing model — can be built from scratch and reasoned about precisely.
//!
//! The ISA has:
//!
//! * 32 integer registers (`r0` hardwired to zero, `r1` = link, `r2` = stack
//!   pointer) and 32 floating-point registers, all 64-bit;
//! * ALU, load/store (8-byte), conditional branch, direct/indirect
//!   call/jump, and FP arithmetic instruction classes;
//! * fixed 4-byte instruction slots so PCs map 1:1 to instruction indices —
//!   which is what lets DLA skeletons be *bit masks over the binary*.
//!
//! # Examples
//!
//! Build and run a tiny program:
//!
//! ```
//! use r3dla_isa::{Asm, Reg, ArchState, VecMem, run};
//!
//! let mut a = Asm::new();
//! let t0 = Reg::int(10);
//! a.li(t0, 5);
//! a.addi(t0, t0, 37);
//! a.halt();
//! let prog = a.finish().unwrap();
//!
//! let mut mem = VecMem::new();
//! let mut st = ArchState::new(prog.code_base());
//! let steps = run(&prog, &mut st, &mut mem, 100).unwrap();
//! assert_eq!(st.reg(t0), 42);
//! assert_eq!(steps, 3);
//! ```

mod asm;
pub mod block;
mod checkpoint;
mod exec;
mod hash;
mod inst;
mod program;

pub use asm::{Asm, AsmError, DataBuilder};
pub use block::{
    decode_block, exec_uops, BlockCache, BlockCacheStats, DecodedBlock, Terminator, Uop,
};
pub use checkpoint::{ArchCheckpoint, Page, PAGE_WORDS};
pub use exec::{
    eval_alu, eval_cond, exec_inst, mem_addr, run, step, ArchState, DataMem, ExecError, MemKind,
    StepOut, VecMem,
};
pub use hash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use inst::{BranchKind, FuClass, Inst, Op, Reg};
pub use program::{Program, CODE_BASE, DATA_BASE, INST_BYTES, STACK_TOP};
