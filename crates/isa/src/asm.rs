//! A small assembler: builds [`Program`]s with labels, branches and a data
//! segment, so workload kernels read like assembly listings.

use std::collections::HashMap;

use crate::inst::{Inst, Op, Reg};
use crate::program::{Program, DATA_BASE, INST_BYTES};

/// Errors produced while finishing a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// A branch referenced a label that was never defined.
    UnresolvedLabel(String),
    /// The same label was defined twice.
    DuplicateLabel(String),
}

impl std::fmt::Display for AsmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AsmError::UnresolvedLabel(l) => write!(f, "unresolved label `{l}`"),
            AsmError::DuplicateLabel(l) => write!(f, "duplicate label `{l}`"),
        }
    }
}

impl std::error::Error for AsmError {}

/// Allocates and initializes the data segment.
///
/// A simple bump allocator starting at [`DATA_BASE`]; all allocations are
/// 8-byte aligned.
#[derive(Debug, Clone, Default)]
pub struct DataBuilder {
    next: u64,
    image: Vec<(u64, u64)>,
}

impl DataBuilder {
    fn new() -> Self {
        Self {
            next: DATA_BASE,
            image: Vec::new(),
        }
    }

    /// Reserves `n` 8-byte words and returns the base address. The words
    /// are zero unless later initialized.
    pub fn alloc_words(&mut self, n: usize) -> u64 {
        let base = self.next;
        self.next += (n as u64) * 8;
        base
    }

    /// Allocates and initializes an array of words; returns its base.
    pub fn words(&mut self, vals: &[u64]) -> u64 {
        let base = self.alloc_words(vals.len());
        for (i, &v) in vals.iter().enumerate() {
            if v != 0 {
                self.image.push((base + i as u64 * 8, v));
            }
        }
        base
    }

    /// Allocates and initializes an array of f64 values; returns its base.
    pub fn f64s(&mut self, vals: &[f64]) -> u64 {
        let bits: Vec<u64> = vals.iter().map(|v| v.to_bits()).collect();
        self.words(&bits)
    }

    /// Writes a single word into the image at an already-allocated address.
    pub fn put_word(&mut self, addr: u64, val: u64) {
        self.image.push((addr, val));
    }

    /// Current top of the allocated region.
    pub fn top(&self) -> u64 {
        self.next
    }
}

/// The assembler: accumulates instructions and labels, then resolves them
/// into a [`Program`].
///
/// # Examples
///
/// ```
/// use r3dla_isa::{Asm, Reg};
/// let mut a = Asm::new();
/// let i = Reg::int(10);
/// let n = Reg::int(11);
/// a.li(i, 0);
/// a.li(n, 10);
/// a.label("loop");
/// a.addi(i, i, 1);
/// a.blt(i, n, "loop");
/// a.halt();
/// let prog = a.finish().unwrap();
/// assert_eq!(prog.len(), 5);
/// ```
#[derive(Debug, Clone)]
pub struct Asm {
    name: String,
    insts: Vec<Inst>,
    labels: HashMap<String, usize>,
    fixups: Vec<(usize, String)>,
    data_label_fixups: Vec<(u64, String)>,
    data: DataBuilder,
    duplicate: Option<String>,
}

impl Default for Asm {
    fn default() -> Self {
        Self::new()
    }
}

impl Asm {
    /// Creates an empty assembler for an unnamed program.
    pub fn new() -> Self {
        Self::named("program")
    }

    /// Creates an empty assembler for a program called `name`.
    pub fn named(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            insts: Vec::new(),
            labels: HashMap::new(),
            fixups: Vec::new(),
            data_label_fixups: Vec::new(),
            data: DataBuilder::new(),
            duplicate: None,
        }
    }

    /// Stores the PC of `label` into the data word at `addr` when the
    /// program is finished — the building block for jump/dispatch tables.
    pub fn put_label_addr(&mut self, addr: u64, label: impl Into<String>) {
        self.data_label_fixups.push((addr, label.into()));
    }

    /// Access the data-segment builder.
    pub fn data(&mut self) -> &mut DataBuilder {
        &mut self.data
    }

    /// Number of instructions emitted so far.
    pub fn here(&self) -> usize {
        self.insts.len()
    }

    /// Defines `label` at the current position.
    pub fn label(&mut self, label: impl Into<String>) {
        let label = label.into();
        if self
            .labels
            .insert(label.clone(), self.insts.len())
            .is_some()
        {
            self.duplicate.get_or_insert(label);
        }
    }

    /// Emits a raw instruction.
    pub fn emit(&mut self, inst: Inst) {
        self.insts.push(inst);
    }

    fn emit_rrr(&mut self, op: Op, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Inst {
            op,
            rd,
            rs1,
            rs2,
            imm: 0,
        });
    }

    fn emit_rri(&mut self, op: Op, rd: Reg, rs1: Reg, imm: i64) {
        self.emit(Inst {
            op,
            rd,
            rs1,
            rs2: Reg::ZERO,
            imm,
        });
    }

    fn emit_branch(&mut self, op: Op, rs1: Reg, rs2: Reg, label: &str) {
        self.fixups.push((self.insts.len(), label.to_string()));
        self.emit(Inst {
            op,
            rd: Reg::ZERO,
            rs1,
            rs2,
            imm: 0,
        });
    }
}

macro_rules! rrr_ops {
    ($($(#[$doc:meta])* $name:ident => $op:ident),* $(,)?) => {
        impl Asm {
            $(
                $(#[$doc])*
                pub fn $name(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
                    self.emit_rrr(Op::$op, rd, rs1, rs2);
                }
            )*
        }
    };
}

rrr_ops! {
    /// `rd = rs1 + rs2`
    add => Add,
    /// `rd = rs1 - rs2`
    sub => Sub,
    /// `rd = rs1 * rs2`
    mul => Mul,
    /// `rd = rs1 / rs2` (unsigned; X/0 = all-ones)
    div => Div,
    /// `rd = rs1 % rs2` (unsigned; X%0 = X)
    rem => Rem,
    /// `rd = rs1 & rs2`
    and_ => And,
    /// `rd = rs1 | rs2`
    or_ => Or,
    /// `rd = rs1 ^ rs2`
    xor => Xor,
    /// `rd = rs1 << (rs2 & 63)`
    sll => Sll,
    /// `rd = rs1 >> (rs2 & 63)` (logical)
    srl => Srl,
    /// `rd = rs1 >> (rs2 & 63)` (arithmetic)
    sra => Sra,
    /// `rd = (rs1 <s rs2) ? 1 : 0`
    slt => Slt,
    /// `rd = (rs1 <u rs2) ? 1 : 0`
    sltu => Sltu,
    /// `fd = fs1 + fs2`
    fadd => Fadd,
    /// `fd = fs1 - fs2`
    fsub => Fsub,
    /// `fd = fs1 * fs2`
    fmul => Fmul,
    /// `fd = fs1 / fs2`
    fdiv => Fdiv,
    /// `rd = (fs1 < fs2) ? 1 : 0` (rd is an integer register)
    flt => Flt,
}

macro_rules! rri_ops {
    ($($(#[$doc:meta])* $name:ident => $op:ident),* $(,)?) => {
        impl Asm {
            $(
                $(#[$doc])*
                pub fn $name(&mut self, rd: Reg, rs1: Reg, imm: i64) {
                    self.emit_rri(Op::$op, rd, rs1, imm);
                }
            )*
        }
    };
}

rri_ops! {
    /// `rd = rs1 + imm`
    addi => Addi,
    /// `rd = rs1 & imm`
    andi => Andi,
    /// `rd = rs1 | imm`
    ori => Ori,
    /// `rd = rs1 ^ imm`
    xori => Xori,
    /// `rd = rs1 << imm`
    slli => Slli,
    /// `rd = rs1 >> imm` (logical)
    srli => Srli,
    /// `rd = rs1 >> imm` (arithmetic)
    srai => Srai,
    /// `rd = (rs1 <s imm) ? 1 : 0`
    slti => Slti,
}

macro_rules! branch_ops {
    ($($(#[$doc:meta])* $name:ident => $op:ident),* $(,)?) => {
        impl Asm {
            $(
                $(#[$doc])*
                pub fn $name(&mut self, rs1: Reg, rs2: Reg, label: &str) {
                    self.emit_branch(Op::$op, rs1, rs2, label);
                }
            )*
        }
    };
}

branch_ops! {
    /// Branch to `label` if `rs1 == rs2`.
    beq => Beq,
    /// Branch to `label` if `rs1 != rs2`.
    bne => Bne,
    /// Branch to `label` if `rs1 <s rs2`.
    blt => Blt,
    /// Branch to `label` if `rs1 >=s rs2`.
    bge => Bge,
    /// Branch to `label` if `rs1 <u rs2`.
    bltu => Bltu,
    /// Branch to `label` if `rs1 >=u rs2`.
    bgeu => Bgeu,
}

impl Asm {
    /// `rd = imm` (64-bit immediate load).
    pub fn li(&mut self, rd: Reg, imm: i64) {
        self.emit_rri(Op::Li, rd, Reg::ZERO, imm);
    }

    /// Register move: `rd = rs`.
    pub fn mv(&mut self, rd: Reg, rs: Reg) {
        self.addi(rd, rs, 0);
    }

    /// `rd = mem[rs_base + off]`.
    pub fn ld(&mut self, rd: Reg, rs_base: Reg, off: i64) {
        self.emit_rri(Op::Ld, rd, rs_base, off);
    }

    /// `mem[rs_base + off] = rs_src`.
    pub fn st(&mut self, rs_src: Reg, rs_base: Reg, off: i64) {
        self.emit(Inst {
            op: Op::St,
            rd: Reg::ZERO,
            rs1: rs_base,
            rs2: rs_src,
            imm: off,
        });
    }

    /// Unconditional jump to `label`.
    pub fn j(&mut self, label: &str) {
        self.fixups.push((self.insts.len(), label.to_string()));
        self.emit(Inst {
            op: Op::Jal,
            rd: Reg::ZERO,
            rs1: Reg::ZERO,
            rs2: Reg::ZERO,
            imm: 0,
        });
    }

    /// Direct call to `label` (link in `ra`).
    pub fn call(&mut self, label: &str) {
        self.fixups.push((self.insts.len(), label.to_string()));
        self.emit(Inst {
            op: Op::Jal,
            rd: Reg::RA,
            rs1: Reg::ZERO,
            rs2: Reg::ZERO,
            imm: 0,
        });
    }

    /// Return (`jalr r0, ra, 0`).
    pub fn ret(&mut self) {
        self.emit(Inst {
            op: Op::Jalr,
            rd: Reg::ZERO,
            rs1: Reg::RA,
            rs2: Reg::ZERO,
            imm: 0,
        });
    }

    /// Indirect jump through `rs`.
    pub fn jr(&mut self, rs: Reg) {
        self.emit(Inst {
            op: Op::Jalr,
            rd: Reg::ZERO,
            rs1: rs,
            rs2: Reg::ZERO,
            imm: 0,
        });
    }

    /// Indirect call through `rs` (link in `ra`).
    pub fn callr(&mut self, rs: Reg) {
        self.emit(Inst {
            op: Op::Jalr,
            rd: Reg::RA,
            rs1: rs,
            rs2: Reg::ZERO,
            imm: 0,
        });
    }

    /// Integer-to-float convert: `fd = (f64) rs`.
    pub fn cvtif(&mut self, fd: Reg, rs: Reg) {
        self.emit_rri(Op::Cvtif, fd, rs, 0);
    }

    /// Float-to-integer convert: `rd = (i64) fs` (truncating).
    pub fn cvtfi(&mut self, rd: Reg, fs: Reg) {
        self.emit_rri(Op::Cvtfi, rd, fs, 0);
    }

    /// No-op.
    pub fn nop(&mut self) {
        self.emit(Inst::NOP);
    }

    /// Stop the program.
    pub fn halt(&mut self) {
        self.emit(Inst {
            op: Op::Halt,
            ..Inst::NOP
        });
    }

    /// Resolves labels and produces the final [`Program`].
    ///
    /// # Errors
    ///
    /// Returns [`AsmError::UnresolvedLabel`] if a branch references an
    /// undefined label, or [`AsmError::DuplicateLabel`] if a label was
    /// defined more than once.
    pub fn finish(self) -> Result<Program, AsmError> {
        if let Some(dup) = self.duplicate {
            return Err(AsmError::DuplicateLabel(dup));
        }
        let Asm {
            name,
            mut insts,
            labels,
            fixups,
            data_label_fixups,
            mut data,
            ..
        } = self;
        for (idx, label) in fixups {
            let target_idx = *labels
                .get(&label)
                .ok_or_else(|| AsmError::UnresolvedLabel(label.clone()))?;
            insts[idx].imm = (crate::program::CODE_BASE + target_idx as u64 * INST_BYTES) as i64;
        }
        for (addr, label) in data_label_fixups {
            let target_idx = *labels
                .get(&label)
                .ok_or_else(|| AsmError::UnresolvedLabel(label.clone()))?;
            data.image.push((
                addr,
                crate::program::CODE_BASE + target_idx as u64 * INST_BYTES,
            ));
        }
        Ok(Program::from_parts(name, insts, 0, data.image))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{run, ArchState, VecMem};
    use crate::program::CODE_BASE;

    #[test]
    fn forward_and_backward_labels_resolve() {
        let mut a = Asm::new();
        let r = Reg::int(10);
        a.li(r, 0);
        a.label("top");
        a.addi(r, r, 1);
        a.beq(r, Reg::ZERO, "end"); // never taken
        a.slti(Reg::int(11), r, 3);
        a.bne(Reg::int(11), Reg::ZERO, "top");
        a.label("end");
        a.halt();
        let p = a.finish().unwrap();
        // beq target = "end" = index 5
        let beq = p.insts()[2];
        assert_eq!(beq.imm as u64, CODE_BASE + 5 * 4);
    }

    #[test]
    fn unresolved_label_is_error() {
        let mut a = Asm::new();
        a.j("nowhere");
        assert_eq!(a.finish(), Err(AsmError::UnresolvedLabel("nowhere".into())));
    }

    #[test]
    fn duplicate_label_is_error() {
        let mut a = Asm::new();
        a.label("x");
        a.nop();
        a.label("x");
        a.halt();
        assert_eq!(a.finish(), Err(AsmError::DuplicateLabel("x".into())));
    }

    #[test]
    fn data_builder_allocates_aligned() {
        let mut d = DataBuilder::new();
        let a = d.alloc_words(3);
        let b = d.alloc_words(1);
        assert_eq!(a % 8, 0);
        assert_eq!(b, a + 24);
    }

    #[test]
    fn loop_program_runs() {
        let mut a = Asm::new();
        let i = Reg::int(10);
        let n = Reg::int(11);
        let acc = Reg::int(12);
        a.li(i, 0);
        a.li(n, 5);
        a.li(acc, 0);
        a.label("loop");
        a.add(acc, acc, i);
        a.addi(i, i, 1);
        a.blt(i, n, "loop");
        a.halt();
        let p = a.finish().unwrap();
        let mut st = ArchState::new(p.entry());
        let mut mem = VecMem::new();
        run(&p, &mut st, &mut mem, 1000).unwrap();
        assert_eq!(st.reg(acc), 1 + 2 + 3 + 4);
    }

    #[test]
    fn call_and_return() {
        let mut a = Asm::new();
        let x = Reg::int(10);
        a.li(x, 1);
        a.call("double");
        a.call("double");
        a.halt();
        a.label("double");
        a.add(x, x, x);
        a.ret();
        let p = a.finish().unwrap();
        let mut st = ArchState::new(p.entry());
        let mut mem = VecMem::new();
        run(&p, &mut st, &mut mem, 1000).unwrap();
        assert_eq!(st.reg(x), 4);
    }

    #[test]
    fn memory_round_trip_through_program() {
        let mut a = Asm::new();
        let base_addr = a.data().words(&[7, 0]);
        let b = Reg::int(10);
        let v = Reg::int(11);
        a.li(b, base_addr as i64);
        a.ld(v, b, 0);
        a.add(v, v, v);
        a.st(v, b, 8);
        a.halt();
        let p = a.finish().unwrap();
        let mut st = ArchState::new(p.entry());
        let mut mem = VecMem::new();
        mem.load_image(p.image());
        run(&p, &mut st, &mut mem, 100).unwrap();
        use crate::exec::DataMem;
        assert_eq!(mem.load(base_addr + 8), 14);
    }
}
