//! Instruction and register definitions.

use std::fmt;

/// An architectural register.
///
/// Identifiers 0–31 are integer registers, 32–63 floating-point registers.
/// `r0` is hardwired to zero; `r1` is the link register; `r2` the stack
/// pointer (by software convention).
///
/// # Examples
///
/// ```
/// use r3dla_isa::Reg;
/// let r = Reg::int(10);
/// assert!(r.is_int());
/// let f = Reg::fp(3);
/// assert!(f.is_fp());
/// assert_eq!(f.index(), 35);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(u8);

impl Reg {
    /// The hardwired-zero register.
    pub const ZERO: Reg = Reg(0);
    /// The link (return-address) register.
    pub const RA: Reg = Reg(1);
    /// The stack pointer, by software convention.
    pub const SP: Reg = Reg(2);

    /// Number of architectural registers (32 int + 32 fp).
    pub const COUNT: usize = 64;

    /// Creates an integer register `r{n}`.
    ///
    /// # Panics
    ///
    /// Panics if `n >= 32`.
    pub const fn int(n: u8) -> Reg {
        assert!(n < 32, "integer register out of range");
        Reg(n)
    }

    /// Creates a floating-point register `f{n}`.
    ///
    /// # Panics
    ///
    /// Panics if `n >= 32`.
    pub const fn fp(n: u8) -> Reg {
        assert!(n < 32, "fp register out of range");
        Reg(n + 32)
    }

    /// Creates a register from a flat index 0..64.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= 64`.
    pub const fn from_index(idx: usize) -> Reg {
        assert!(idx < Reg::COUNT, "register index out of range");
        Reg(idx as u8)
    }

    /// Flat index in 0..64 (integer then fp).
    ///
    /// The mask is a no-op (every constructor checks `< 64`) but proves
    /// the in-bounds invariant to the optimizer, so register-file
    /// indexing compiles without bounds checks in the emulator and core
    /// hot loops.
    #[inline]
    pub const fn index(self) -> usize {
        (self.0 & (Reg::COUNT as u8 - 1)) as usize
    }

    /// Whether this is an integer register.
    #[inline]
    pub const fn is_int(self) -> bool {
        self.0 < 32
    }

    /// Whether this is a floating-point register.
    #[inline]
    pub const fn is_fp(self) -> bool {
        self.0 >= 32
    }

    /// Whether this is the hardwired zero register.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_int() {
            write!(f, "r{}", self.0)
        } else {
            write!(f, "f{}", self.0 - 32)
        }
    }
}

/// Operation codes.
///
/// Immediate forms take `rs1` and `imm`; register forms take `rs1`/`rs2`.
/// Branch targets are absolute PCs stored in `imm` (resolved by the
/// assembler). `Jalr` computes its target as `rs1 + imm`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    // Integer register-register ALU.
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
    Sll,
    Srl,
    Sra,
    Slt,
    Sltu,
    // Integer register-immediate ALU.
    Addi,
    Andi,
    Ori,
    Xori,
    Slli,
    Srli,
    Srai,
    Slti,
    /// Load a 64-bit immediate into `rd` (no sources).
    Li,
    // Memory (8-byte).
    /// `rd = mem[rs1 + imm]`.
    Ld,
    /// `mem[rs1 + imm] = rs2`.
    St,
    // Conditional branches (compare rs1, rs2; absolute target in imm).
    Beq,
    Bne,
    Blt,
    Bge,
    Bltu,
    Bgeu,
    /// Direct jump-and-link: `rd = pc + 4; pc = imm`. `rd = r0` is a plain
    /// jump; `rd = ra` is a call.
    Jal,
    /// Indirect jump-and-link: `rd = pc + 4; pc = rs1 + imm`. With
    /// `rd = r0, rs1 = ra` this is a return.
    Jalr,
    // Floating point (operands are f64 bit patterns in fp registers).
    Fadd,
    Fsub,
    Fmul,
    Fdiv,
    /// `rd(int) = (fs1 < fs2) ? 1 : 0`.
    Flt,
    /// Convert integer in `rs1` to f64 in `rd`.
    Cvtif,
    /// Convert f64 in `rs1` to integer in `rd` (truncating).
    Cvtfi,
    /// No operation.
    Nop,
    /// Stop the program.
    Halt,
}

/// Functional-unit class an instruction executes on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FuClass {
    /// Single-cycle integer ALU.
    IntAlu,
    /// Pipelined integer multiplier.
    IntMul,
    /// Unpipelined integer divider.
    IntDiv,
    /// Load/store address generation + memory access.
    Mem,
    /// Pipelined FP add/mul/convert.
    Fp,
    /// Unpipelined FP divider.
    FpDiv,
    /// Branch unit.
    Branch,
}

/// Control-flow classification of branch instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchKind {
    /// Conditional direct branch.
    Cond,
    /// Unconditional direct jump (`Jal` with `rd = r0`).
    Jump,
    /// Direct call (`Jal` with a link register).
    Call,
    /// Indirect return (`Jalr r0, ra`).
    Ret,
    /// Indirect call (`Jalr` with link).
    IndCall,
    /// Other indirect jump (e.g. a switch table).
    IndJump,
}

/// A decoded instruction.
///
/// All fields are public in the C-struct spirit: instructions are passive
/// data produced by the assembler and consumed by the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Inst {
    /// The operation.
    pub op: Op,
    /// Destination register (ignored by ops that do not write one).
    pub rd: Reg,
    /// First source register.
    pub rs1: Reg,
    /// Second source register.
    pub rs2: Reg,
    /// Immediate / absolute branch target / address offset.
    pub imm: i64,
}

impl Inst {
    /// A canonical `nop`.
    pub const NOP: Inst = Inst {
        op: Op::Nop,
        rd: Reg::ZERO,
        rs1: Reg::ZERO,
        rs2: Reg::ZERO,
        imm: 0,
    };

    /// Returns the register this instruction writes, if any (never `r0`).
    pub fn def(&self) -> Option<Reg> {
        use Op::*;
        let rd = match self.op {
            Add | Sub | Mul | Div | Rem | And | Or | Xor | Sll | Srl | Sra | Slt | Sltu | Addi
            | Andi | Ori | Xori | Slli | Srli | Srai | Slti | Li | Ld | Fadd | Fsub | Fmul
            | Fdiv | Flt | Cvtif | Cvtfi => Some(self.rd),
            Jal | Jalr => Some(self.rd),
            St | Beq | Bne | Blt | Bge | Bltu | Bgeu | Nop | Halt => None,
        };
        rd.filter(|r| !r.is_zero())
    }

    /// Returns the registers this instruction reads (zero register elided).
    pub fn uses(&self) -> [Option<Reg>; 2] {
        use Op::*;
        let (a, b) = match self.op {
            Add | Sub | Mul | Div | Rem | And | Or | Xor | Sll | Srl | Sra | Slt | Sltu | Fadd
            | Fsub | Fmul | Fdiv | Flt => (Some(self.rs1), Some(self.rs2)),
            Addi | Andi | Ori | Xori | Slli | Srli | Srai | Slti | Ld | Jalr | Cvtif | Cvtfi => {
                (Some(self.rs1), None)
            }
            St => (Some(self.rs1), Some(self.rs2)),
            Beq | Bne | Blt | Bge | Bltu | Bgeu => (Some(self.rs1), Some(self.rs2)),
            Li | Jal | Nop | Halt => (None, None),
        };
        [a.filter(|r| !r.is_zero()), b.filter(|r| !r.is_zero())]
    }

    /// Whether this is a memory load.
    pub fn is_load(&self) -> bool {
        self.op == Op::Ld
    }

    /// Whether this is a memory store.
    pub fn is_store(&self) -> bool {
        self.op == Op::St
    }

    /// Whether this accesses memory.
    pub fn is_mem(&self) -> bool {
        self.is_load() || self.is_store()
    }

    /// Whether this is any control-flow instruction.
    pub fn is_branch(&self) -> bool {
        self.branch_kind().is_some()
    }

    /// Whether this is a conditional branch.
    pub fn is_cond_branch(&self) -> bool {
        matches!(self.branch_kind(), Some(BranchKind::Cond))
    }

    /// Control-flow classification, if this is a branch.
    pub fn branch_kind(&self) -> Option<BranchKind> {
        use Op::*;
        match self.op {
            Beq | Bne | Blt | Bge | Bltu | Bgeu => Some(BranchKind::Cond),
            Jal => {
                if self.rd.is_zero() {
                    Some(BranchKind::Jump)
                } else {
                    Some(BranchKind::Call)
                }
            }
            Jalr => {
                if self.rd.is_zero() && self.rs1 == Reg::RA {
                    Some(BranchKind::Ret)
                } else if !self.rd.is_zero() {
                    Some(BranchKind::IndCall)
                } else {
                    Some(BranchKind::IndJump)
                }
            }
            _ => None,
        }
    }

    /// Whether the branch target is known statically (direct control flow).
    pub fn has_static_target(&self) -> bool {
        use Op::*;
        matches!(self.op, Beq | Bne | Blt | Bge | Bltu | Bgeu | Jal)
    }

    /// The functional-unit class this instruction occupies.
    pub fn fu_class(&self) -> FuClass {
        use Op::*;
        match self.op {
            Mul => FuClass::IntMul,
            Div | Rem => FuClass::IntDiv,
            Ld | St => FuClass::Mem,
            Fadd | Fsub | Fmul | Flt | Cvtif | Cvtfi => FuClass::Fp,
            Fdiv => FuClass::FpDiv,
            Beq | Bne | Blt | Bge | Bltu | Bgeu | Jal | Jalr => FuClass::Branch,
            _ => FuClass::IntAlu,
        }
    }

    /// Execution latency in cycles on its functional unit.
    pub fn latency(&self) -> u64 {
        match self.fu_class() {
            FuClass::IntAlu | FuClass::Branch => 1,
            FuClass::IntMul => 3,
            FuClass::IntDiv => 12,
            FuClass::Mem => 1, // address generation; cache adds the rest
            FuClass::Fp => 4,
            FuClass::FpDiv => 16,
        }
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Op::*;
        match self.op {
            Nop => write!(f, "nop"),
            Halt => write!(f, "halt"),
            Li => write!(f, "li {}, {}", self.rd, self.imm),
            Ld => write!(f, "ld {}, {}({})", self.rd, self.imm, self.rs1),
            St => write!(f, "st {}, {}({})", self.rs2, self.imm, self.rs1),
            Jal => write!(f, "jal {}, {:#x}", self.rd, self.imm),
            Jalr => write!(f, "jalr {}, {}({})", self.rd, self.imm, self.rs1),
            Beq | Bne | Blt | Bge | Bltu | Bgeu => write!(
                f,
                "{:?} {}, {}, {:#x}",
                self.op, self.rs1, self.rs2, self.imm
            ),
            Addi | Andi | Ori | Xori | Slli | Srli | Srai | Slti => {
                write!(f, "{:?} {}, {}, {}", self.op, self.rd, self.rs1, self.imm)
            }
            _ => write!(f, "{:?} {}, {}, {}", self.op, self.rd, self.rs1, self.rs2),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_classification() {
        assert!(Reg::int(5).is_int());
        assert!(Reg::fp(5).is_fp());
        assert!(Reg::ZERO.is_zero());
        assert_eq!(Reg::fp(0).index(), 32);
        assert_eq!(format!("{}", Reg::int(7)), "r7");
        assert_eq!(format!("{}", Reg::fp(7)), "f7");
    }

    #[test]
    #[should_panic]
    fn reg_int_out_of_range_panics() {
        let _ = Reg::int(32);
    }

    #[test]
    fn def_elides_zero_register() {
        let i = Inst {
            op: Op::Add,
            rd: Reg::ZERO,
            rs1: Reg::int(1),
            rs2: Reg::int(2),
            imm: 0,
        };
        assert_eq!(i.def(), None);
    }

    #[test]
    fn store_has_no_def_two_uses() {
        let i = Inst {
            op: Op::St,
            rd: Reg::ZERO,
            rs1: Reg::int(3),
            rs2: Reg::int(4),
            imm: 8,
        };
        assert_eq!(i.def(), None);
        let u = i.uses();
        assert_eq!(u[0], Some(Reg::int(3)));
        assert_eq!(u[1], Some(Reg::int(4)));
    }

    #[test]
    fn branch_kinds() {
        let beq = Inst {
            op: Op::Beq,
            rd: Reg::ZERO,
            rs1: Reg::int(1),
            rs2: Reg::int(2),
            imm: 0x100,
        };
        assert_eq!(beq.branch_kind(), Some(BranchKind::Cond));
        let jal_call = Inst {
            op: Op::Jal,
            rd: Reg::RA,
            rs1: Reg::ZERO,
            rs2: Reg::ZERO,
            imm: 0x100,
        };
        assert_eq!(jal_call.branch_kind(), Some(BranchKind::Call));
        let jal_jump = Inst {
            rd: Reg::ZERO,
            ..jal_call
        };
        assert_eq!(jal_jump.branch_kind(), Some(BranchKind::Jump));
        let ret = Inst {
            op: Op::Jalr,
            rd: Reg::ZERO,
            rs1: Reg::RA,
            rs2: Reg::ZERO,
            imm: 0,
        };
        assert_eq!(ret.branch_kind(), Some(BranchKind::Ret));
        let ind = Inst {
            rs1: Reg::int(9),
            ..ret
        };
        assert_eq!(ind.branch_kind(), Some(BranchKind::IndJump));
    }

    #[test]
    fn fu_classes_and_latencies() {
        let mk = |op| Inst { op, ..Inst::NOP };
        assert_eq!(mk(Op::Mul).fu_class(), FuClass::IntMul);
        assert_eq!(mk(Op::Div).fu_class(), FuClass::IntDiv);
        assert_eq!(mk(Op::Ld).fu_class(), FuClass::Mem);
        assert_eq!(mk(Op::Fdiv).fu_class(), FuClass::FpDiv);
        assert!(mk(Op::Div).latency() > mk(Op::Add).latency());
    }

    #[test]
    fn display_all_shapes_nonempty() {
        for op in [
            Op::Add,
            Op::Addi,
            Op::Li,
            Op::Ld,
            Op::St,
            Op::Beq,
            Op::Jal,
            Op::Jalr,
            Op::Nop,
            Op::Halt,
            Op::Fadd,
        ] {
            let i = Inst { op, ..Inst::NOP };
            assert!(!format!("{i}").is_empty());
        }
    }
}
