//! # R3-DLA — Reduce, Reuse, Recycle: Decoupled Look-Ahead Architectures
//!
//! A from-scratch Rust reproduction of *R3-DLA (Reduce, Reuse, Recycle): A
//! More Efficient Approach to Decoupled Look-Ahead Architectures*
//! (Kondguli & Huang, HPCA 2019).
//!
//! This facade crate re-exports the whole stack:
//!
//! * [`isa`] — a 64-bit RISC ISA, assembler and functional semantics;
//! * [`mem`] — caches, MSHRs, TLB and a DDR3-style DRAM model;
//! * [`bpred`] — bimodal/gshare/TAGE-style predictors, BTB, RAS;
//! * [`prefetch`] — stride, Best-Offset, next-line, stream and GHB
//!   prefetchers;
//! * [`cpu`] — a cycle-stepped out-of-order core with SMT support;
//! * [`core`] — the paper's contribution: skeletons, BOQ/FQ, T1, value
//!   reuse, fetch buffering and skeleton recycling;
//! * [`baselines`] — B-Fetch, SlipStream and CRE comparators;
//! * [`energy`] — an activity-based CPU/DRAM energy model;
//! * [`analytic`] — the Markov-chain fetch-buffer model of Appendix B;
//! * [`workloads`] — synthetic kernels mimicking SPEC2006 / CRONO /
//!   STARBENCH / NPB behaviour classes;
//! * [`stats`] — deterministic PRNGs and summary statistics;
//! * [`obs`] — campaign telemetry: spans, counters, Chrome-trace and
//!   sidecar sinks, live progress (off the deterministic report path);
//! * [`sample`] — checkpoints and sampled simulation: functional
//!   fast-forward, microarchitectural warmup, systematic interval
//!   sampling with confidence intervals.
//!
//! # Quickstart
//!
//! ```
//! use r3dla::core::{DlaConfig, DlaSystem, SkeletonOptions};
//! use r3dla::workloads::{suite, Scale};
//!
//! // Pick a workload and build its R3-DLA system.
//! let wl = &suite()[0];
//! let built = wl.build(Scale::Tiny);
//! let mut sys = DlaSystem::build(
//!     &built,
//!     DlaConfig::r3(),
//!     SkeletonOptions::default(),
//! ).unwrap();
//! let report = sys.measure(2_000, 10_000);
//! assert!(report.mt_committed > 0);
//! ```

pub use r3dla_analytic as analytic;
pub use r3dla_baselines as baselines;
pub use r3dla_bpred as bpred;
pub use r3dla_core as core;
pub use r3dla_cpu as cpu;
pub use r3dla_energy as energy;
pub use r3dla_isa as isa;
pub use r3dla_mem as mem;
pub use r3dla_obs as obs;
pub use r3dla_prefetch as prefetch;
pub use r3dla_sample as sample;
pub use r3dla_stats as stats;
pub use r3dla_workloads as workloads;
