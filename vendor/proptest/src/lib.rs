//! Offline stand-in for the `proptest` property-testing crate.
//!
//! The build environment has no network access, so this vendored crate
//! implements the subset of the proptest API that the workspace's tests
//! use:
//!
//! * the [`proptest!`] macro with both `name: Type` (arbitrary) and
//!   `name in strategy` parameter forms;
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`;
//! * `any::<T>()` for the primitive types;
//! * numeric range strategies (`0u64..64`, `0.01f64..1.0`, …);
//! * `prop::collection::vec(strategy, size_range)`.
//!
//! Unlike real proptest there is no shrinking: a failing case panics
//! immediately and prints the deterministic case index so it can be
//! replayed. Case count defaults to 64 and can be overridden with the
//! `PROPTEST_CASES` environment variable.

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A source of random values of one type.
    pub trait Strategy {
        type Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    // Sampling a strategy through a reference (ranges are sampled behind
    // `&` by the `proptest!` macro expansion).
    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (**self).sample(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let r = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                    (self.start as i128 + r as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let r = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                    (lo as i128 + r as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                    self.start + (self.end - self.start) * unit as $t
                }
            }
        )*};
    }
    float_range_strategy!(f32, f64);

    /// Strategy yielding a constant value (`Just` in real proptest).
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary_with(rng: &mut TestRng) -> Self;
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary_with(rng)
        }
    }

    /// Strategy producing any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl Arbitrary for bool {
        fn arbitrary_with(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_with(rng: &mut TestRng) -> $t {
                    // Mix in edge values now and then: property tests over
                    // plain `any::<uN>()` care about 0 / MAX far more often
                    // than a uniform draw would produce them.
                    match rng.next_u64() % 16 {
                        0 => 0,
                        1 => <$t>::MAX,
                        2 => <$t>::MIN,
                        3 => 1 as $t,
                        _ => rng.next_u64() as $t,
                    }
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for f64 {
        fn arbitrary_with(rng: &mut TestRng) -> f64 {
            // Finite doubles spanning many magnitudes.
            let mag = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            let exp = (rng.next_u64() % 64) as i32 - 32;
            let sign = if rng.next_u64() & 1 == 1 { -1.0 } else { 1.0 };
            sign * mag * (2f64).powi(exp)
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary_with(rng: &mut TestRng) -> f32 {
            f64::arbitrary_with(rng) as f32
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::ops::Range;

    /// Strategy for `Vec<S::Value>` with length drawn from a size range.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `prop::collection::vec(element_strategy, size_range)`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod test_runner {
    /// Deterministic splitmix64 generator; each test case gets its own
    /// stream derived from a fixed base seed plus the case index.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn for_case(case: u64) -> TestRng {
            TestRng {
                state: 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(case.wrapping_add(0x1234_5678)),
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    /// Number of cases run per property (`PROPTEST_CASES` overrides).
    pub fn cases() -> u64 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64)
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Namespace mirror of real proptest's `prelude::prop` module.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Property-test entry macro. Supports multiple `#[test] fn` items, each
/// with parameters of the form `name: Type` or `name in strategy_expr`.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                for __proptest_case in 0..$crate::test_runner::cases() {
                    let mut __proptest_rng =
                        $crate::test_runner::TestRng::for_case(__proptest_case);
                    let run = || {
                        $crate::__proptest_bind!(__proptest_rng, ($($params)*) $body);
                    };
                    if let Err(e) = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(run),
                    ) {
                        eprintln!(
                            "proptest: property `{}` failed at case {} of {}",
                            stringify!($name),
                            __proptest_case,
                            $crate::test_runner::cases(),
                        );
                        ::std::panic::resume_unwind(e);
                    }
                }
            }
        )*
    };
}

/// Internal helper: recursively bind each parameter, then run the body.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident, () $body:block) => { $body };
    ($rng:ident, ($name:ident in $strat:expr) $body:block) => {{
        let $name = $crate::strategy::Strategy::sample(&($strat), &mut $rng);
        $crate::__proptest_bind!($rng, () $body)
    }};
    ($rng:ident, ($name:ident in $strat:expr, $($rest:tt)*) $body:block) => {{
        let $name = $crate::strategy::Strategy::sample(&($strat), &mut $rng);
        $crate::__proptest_bind!($rng, ($($rest)*) $body)
    }};
    ($rng:ident, ($name:ident : $ty:ty) $body:block) => {{
        let $name: $ty = $crate::strategy::Strategy::sample(
            &$crate::arbitrary::any::<$ty>(),
            &mut $rng,
        );
        $crate::__proptest_bind!($rng, () $body)
    }};
    ($rng:ident, ($name:ident : $ty:ty, $($rest:tt)*) $body:block) => {{
        let $name: $ty = $crate::strategy::Strategy::sample(
            &$crate::arbitrary::any::<$ty>(),
            &mut $rng,
        );
        $crate::__proptest_bind!($rng, ($($rest)*) $body)
    }};
}

/// Assert a condition inside a property (panics — no shrinking here).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn typed_and_strategy_params_mix(a: u64, xs in prop::collection::vec(0u32..10, 1..5), f in 0.5f64..1.0) {
            prop_assert_eq!(a, a);
            prop_assert!(!xs.is_empty() && xs.len() < 5);
            prop_assert!(xs.iter().all(|&x| x < 10));
            prop_assert!((0.5..1.0).contains(&f));
        }

        #[test]
        fn bools_vary(bits in prop::collection::vec(any::<bool>(), 64..65)) {
            // 64 fair coin flips are essentially never all identical.
            let ones = bits.iter().filter(|&&b| b).count();
            prop_assert!(ones > 0 && ones < 64);
        }
    }

    #[test]
    fn determinism() {
        let mut a = crate::test_runner::TestRng::for_case(7);
        let mut b = crate::test_runner::TestRng::for_case(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
