//! Offline stand-in for the `criterion` benchmarking crate.
//!
//! The build environment has no network access, so this vendored crate
//! implements exactly the API surface the workspace's benches use:
//! [`Criterion`], [`Criterion::benchmark_group`], `sample_size`,
//! `bench_function`, `finish`, plus the [`criterion_group!`] /
//! [`criterion_main!`] macros and [`black_box`].
//!
//! Timing is real (monotonic clock, median-of-samples) but there is no
//! statistical analysis, plotting or HTML report — benches print a
//! one-line `name  median  mean` summary per function.

use std::time::{Duration, Instant};

/// Prevent the optimiser from deleting a computed value.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Entry point handed to `criterion_group!` targets.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Begin a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size,
        }
    }

    /// Run a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.default_sample_size;
        run_one(&id.into(), sample_size, &mut f);
        self
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timing samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Time `f` and print a one-line summary.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_one(&full, self.sample_size, &mut f);
        self
    }

    /// End the group (report-flushing is a no-op here).
    pub fn finish(&mut self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, samples: usize, f: &mut F) {
    let mut b = Bencher {
        samples: Vec::with_capacity(samples),
        per_sample_iters: 1,
        budget: Duration::from_millis(200),
        requested_samples: samples,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{name:<44} (no samples)");
        return;
    }
    b.samples.sort();
    let median = b.samples[b.samples.len() / 2];
    let mean = b.samples.iter().sum::<Duration>() / b.samples.len() as u32;
    println!(
        "{name:<44} median {:>12.3?}  mean {:>12.3?}  ({} samples)",
        median,
        mean,
        b.samples.len()
    );
}

/// Passed to the closure given to `bench_function`; call [`Bencher::iter`].
pub struct Bencher {
    samples: Vec<Duration>,
    per_sample_iters: u32,
    budget: Duration,
    requested_samples: usize,
}

impl Bencher {
    /// Time the routine, collecting up to the configured number of samples
    /// within a fixed wall-clock budget so huge workloads stay bounded.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start_all = Instant::now();
        for _ in 0..self.requested_samples {
            let t0 = Instant::now();
            for _ in 0..self.per_sample_iters {
                black_box(routine());
            }
            self.samples.push(t0.elapsed() / self.per_sample_iters);
            if start_all.elapsed() > self.budget {
                break;
            }
        }
    }
}

/// Declare a benchmark group: `criterion_group!(benches, bench_fn, ...)`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Generate `fn main` running the given groups (benches use `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes `--bench`; `cargo test` may pass
            // `--test` and expects the harness to exit cleanly.
            let args: Vec<String> = std::env::args().collect();
            if args.iter().any(|a| a == "--test") {
                return;
            }
            $( $group(); )+
        }
    };
}
